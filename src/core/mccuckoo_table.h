// Multi-copy Cuckoo hash table (McCuckoo) — the paper's core contribution.
//
// A d-ary, one-slot-per-bucket cuckoo table that, instead of committing an
// inserted item to a single bucket, writes a copy into *every* free
// candidate bucket and tracks each bucket occupant's total copy count in a
// compact on-chip counter array. The counters then drive every operation:
//
//  * Insertion (§III.B.1) — principles:
//      1. occupy all empty candidate buckets;
//      2. never overwrite a bucket of value 1 (a sole copy);
//      3. overwrite the rest in decreasing counter order while the victim
//         still has at least two more copies than the inserted item
//         (V >= n_x + 2).
//    A real collision only occurs when all candidates hold sole copies;
//    then a counter-guided random walk relocates items, and maxloop
//    overruns go to an off-chip stash.
//  * Lookup (§III.B.2) — candidates are partitioned by counter value;
//    partitions smaller than their value are impossible and skipped; a
//    partition of size S and value V needs at most S - V + 1 probes. With
//    deletions disabled, a zero counter anywhere proves the key was never
//    inserted (Bloom property: zero off-chip accesses).
//  * Deletion (§III.B.3) — all V copies are located, then only their on-chip
//    counters are reset (or tombstoned): zero off-chip writes.
//  * Stash screening (§III.E/F) — a 1-bit flag per bucket (stored with the
//    bucket, read back for free during lookups) plus the rule "a stashed
//    item always saw all-ones counters" suppress almost every stash probe.
//
// One point the paper leaves implicit is made explicit here: overwriting a
// redundant copy of victim B (counter V >= 2) requires decrementing B's
// *other* copies' counters, whose positions are only learned by reading B's
// key from the overwritten bucket (the read cost visible in Fig 10a) and
// then identifying B's copies inside the value-V partition of B's
// candidates — by pigeonhole inference when the partition has exactly V
// members, by further reads otherwise. See LocateOtherCopies().

#ifndef MCCUCKOO_CORE_MCCUCKOO_TABLE_H_
#define MCCUCKOO_CORE_MCCUCKOO_TABLE_H_

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/config.h"
#include "src/core/counter_array.h"
#include "src/core/eviction.h"
#include "src/core/growth.h"
#include "src/core/lock_stripes.h"
#include "src/core/seqlock.h"
#include "src/core/stash.h"
#include "src/hash/hash_family.h"
#include "src/mem/access_stats.h"
#include "src/obs/heatmap.h"
#include "src/obs/latency_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/span_recorder.h"
#include "src/obs/trace_recorder.h"

namespace mccuckoo {

static_assert(kMaxHashes + 1 <= kMetricsPartitions,
              "partition metric arrays must cover counter values 0..d");

/// Multi-copy cuckoo hash table. Key must be equality-comparable and
/// hashable by Hasher; Key and Value must be copyable. Not thread-safe (see
/// ConcurrentMcCuckoo for the one-writer-many-readers wrapper).
template <typename Key, typename Value, typename Hasher = BobHasher,
          typename Family = HashFamily<Key, Hasher>>
  requires SeedableHasher<Hasher, Key>
class McCuckooTable {
 public:
  /// Exposed template parameters (used by wrappers/adapters).
  using KeyType = Key;
  using ValueType = Value;
  using HasherType = Hasher;

  /// One off-chip bucket: the stored record plus the 1-bit stash flag that
  /// shares the bucket's memory word (§III.E). Occupancy is defined by the
  /// on-chip counter, not by the bucket itself.
  struct Bucket {
    Key key{};
    Value value{};
    bool stash_flag = false;
  };

 private:
  // Nested aggregates are defined before the operations: the batched and
  // candidate-reusing member signatures below mention them.

  /// The d global bucket indices of a key (index = t * buckets_per_table +
  /// h_t(key); distinct across sub-tables by construction), plus the key's
  /// 8-bit fingerprint (derived for free from the same hash evaluation;
  /// the counter store keeps its low nibble per bucket for probe screening).
  struct Candidates {
    std::array<size_t, kMaxHashes> idx;
    uint8_t tag = 0;
  };

  /// Candidate indices plus their counters/tombstones as read (once, all
  /// charged) at the start of an operation, and which were bucket-read.
  struct CandidateView {
    std::array<size_t, kMaxHashes> idx{};
    std::array<uint64_t, kMaxHashes> counter{};
    std::array<bool, kMaxHashes> tombstone{};
    std::array<bool, kMaxHashes> bucket_read{};  // flag available?
    std::array<bool, kMaxHashes> flag_value{};
    uint32_t d = 0;
    // Probe accounting for the metrics layer (stack-local tallies; the
    // atomics are only touched once per operation in RecordLookupMetrics).
    std::array<uint8_t, kMaxHashes + 1> probes_by_value{};
    uint32_t probes_total = 0;
    int32_t hit_value = -1;  // partition value the key was found in
  };

  /// Up to d global indices holding copies of one key.
  struct CopySet {
    std::array<size_t, kMaxHashes> idx;
    uint32_t count = 0;
  };

 public:
  /// The configuration conditions Create() reports as Status. The
  /// constructor enforces the same conditions with an unconditional abort,
  /// so Debug and Release builds agree on what direct construction with
  /// unsupported options does (it used to be a Debug-only assert).
  static Status CheckOptions(const TableOptions& options) {
    if (Status s = options.Validate(); !s.ok()) return s;
    if (options.slots_per_bucket != 1) {
      return Status::InvalidArgument(
          "McCuckooTable is single-slot; use BlockedMcCuckooTable");
    }
    return Status::OK();
  }

  /// Constructs a table; `options` must satisfy CheckOptions() (aborts
  /// otherwise — use Create() for untrusted configuration).
  explicit McCuckooTable(const TableOptions& options)
      : opts_(options),
        family_(options.num_hashes, options.buckets_per_table, options.seed),
        table_(options.num_hashes * options.buckets_per_table),
        counters_(options.num_hashes * options.buckets_per_table,
                  options.num_hashes, stats_.get()),
        rng_(SplitMix64(options.seed ^ 0xA5A5A5A5A5A5A5A5ull)),
        growth_(options.growth) {
    if (Status s = CheckOptions(options); !s.ok()) {
      std::fprintf(stderr, "McCuckooTable: %s\n", s.message().c_str());
      std::abort();
    }
    if (options.eviction_policy == EvictionPolicy::kMinCounter) {
      kick_history_ = KickHistory(table_.size(), options.kick_counter_bits,
                                  stats_.get());
    }
    latency_->set_sample_period(options.latency_sample_period);
  }

  /// Validating factory for untrusted configuration.
  static Result<McCuckooTable> Create(const TableOptions& options) {
    if (Status s = CheckOptions(options); !s.ok()) return s;
    return McCuckooTable(options);
  }

  // --- Core operations -------------------------------------------------

  /// Inserts a key assumed not to be present (the common case in the
  /// paper's workloads; duplicate keys corrupt the copy invariants — use
  /// InsertOrAssign when presence is unknown).
  InsertResult Insert(const Key& key, const Value& value) {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kInsert);
    return InsertWithCandidates(key, value, ComputeCandidates(key));
  }

  /// Inserts or, if the key exists (main table or stash), updates every
  /// copy of it.
  InsertResult InsertOrAssign(const Key& key, const Value& value) {
    CandidateView view;
    int64_t found = FindInMain(key, ComputeCandidates(key), nullptr, &view);
    if (found >= 0) {
      CopySet copies = LocateAllCopies(key, static_cast<size_t>(found),
                                       view.counter[FindSlot(view, found)]);
      for (uint32_t i = 0; i < copies.count; ++i) {
        StoreBucket(copies.idx[i], key, value);
      }
      SeqFlush();
      return InsertResult::kUpdated;
    }
    if (ShouldProbeStash(view)) {
      ChargeStashProbe();
      const bool in_stash = stash_.Find(key, nullptr);
      metrics_->RecordStashProbe(in_stash);
      if (in_stash) {
        ChargeStashWrite();
        SeqOpenAux();
        stash_.Insert(key, value);
        SeqFlush();
        return InsertResult::kUpdated;
      }
    }
    return Insert(key, value);
  }

  /// Looks `key` up; writes the value through `out` when found (out may be
  /// null). Mutates only the access statistics.
  bool Find(const Key& key, Value* out = nullptr) const {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kFind);
    return FindImpl(key, ComputeCandidates(key), out, *metrics_);
  }

  /// Convenience wrapper over Find.
  bool Contains(const Key& key) const { return Find(key, nullptr); }

  // --- Batched operations (software-pipelined) ---------------------------
  //
  // The scalar operations above issue one dependent miss chain per key:
  // hash -> counter word -> candidate bucket. The batched variants break
  // the chain in two stages per tile of up to kBatchTile keys: stage 1
  // hashes every key and __builtin_prefetch-es all candidate buckets and
  // their on-chip counter words; stage 2 replays the *unchanged* scalar
  // per-key logic against now-warm lines. The counter-partition
  // probe-skipping rules, stash screening, and AccessStats accounting are
  // bit-identical to a scalar loop over the same keys (differential-tested)
  // — prefetching only hides latency, it never reads for the algorithm.

  /// Internal pipeline depth: tiles bound the candidate scratch space and
  /// keep the prefetch distance within what outstanding-miss buffers cover.
  /// The bound is an L1 budget, not a miss-buffer one: a tile touches
  /// d lines per key (bucket + its counter word, which usually share a
  /// set), so at d = 3 a 64-key tile stages ~64 * 3 * 2 * 64B = 24 KB —
  /// most of a 32 KB L1d — and by the time stage 2 replays key 0 its lines
  /// have been evicted by keys 40+ (the batch64/batch32 load95 regression).
  /// 16 keys * 3 candidates * 2 lines = 6 KB leaves room for the probe
  /// loop's own working set, and 48 outstanding prefetches still cover the
  /// ~10 line-fill buffers of current cores.
  static constexpr size_t kBatchTile = 16;

  /// Batched lookup. For key i, found[i] is set and, on a hit, out[i]
  /// receives the value (out may be null; found must not be). Returns the
  /// number of keys found. Equivalent to calling Find per key, in order.
  size_t FindBatch(std::span<const Key> keys, Value* out, bool* found) const {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kFindBatch);
    size_t hits = 0;
    std::array<Candidates, kBatchTile> cand;
    // Lookup metrics accumulate on the stack and publish once per batch:
    // same totals as per-key recording, a fraction of the atomic RMWs.
    LookupTally tally;
    for (size_t base = 0; base < keys.size(); base += kBatchTile) {
      const size_t n = std::min(kBatchTile, keys.size() - base);
      StageCandidates(&keys[base], n, cand.data(), /*for_write=*/false);
      for (size_t i = 0; i < n; ++i) {
        const bool hit =
            FindImpl(keys[base + i], cand[i],
                     out != nullptr ? &out[base + i] : nullptr, tally);
        if (found != nullptr) found[base + i] = hit;
        hits += hit ? 1 : 0;
      }
    }
    tally.FlushTo(*metrics_);
    return hits;
  }

  /// Batched membership test: FindBatch without value extraction.
  size_t ContainsBatch(std::span<const Key> keys, bool* found) const {
    return FindBatch(keys, nullptr, found);
  }

  /// Batched mutation-free lookup (the sharded/concurrent reader path):
  /// equivalent to calling FindNoStats per key, in order.
  size_t FindBatchNoStats(std::span<const Key> keys, Value* out,
                          bool* found) const {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kFindBatch);
    size_t hits = 0;
    std::array<Candidates, kBatchTile> cand;
    LookupTally tally;
    for (size_t base = 0; base < keys.size(); base += kBatchTile) {
      const size_t n = std::min(kBatchTile, keys.size() - base);
      StageCandidates(&keys[base], n, cand.data(), /*for_write=*/false);
      for (size_t i = 0; i < n; ++i) {
        const bool hit =
            FindNoStatsImpl(keys[base + i], cand[i],
                            out != nullptr ? &out[base + i] : nullptr, tally);
        if (found != nullptr) found[base + i] = hit;
        hits += hit ? 1 : 0;
      }
    }
    tally.FlushTo(*metrics_);
    return hits;
  }

  /// Batched insertion of keys assumed not to be present; results[i] (when
  /// results is non-null) receives the per-key outcome. Equivalent to
  /// calling Insert per key, in order — kick-out chains and stash spills
  /// behave exactly as in the scalar path.
  void InsertBatch(std::span<const Key> keys, std::span<const Value> values,
                   InsertResult* results = nullptr) {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kInsertBatch);
    assert(keys.size() == values.size());
    std::array<Candidates, kBatchTile> cand;
    for (size_t base = 0; base < keys.size(); base += kBatchTile) {
      const size_t n = std::min(kBatchTile, keys.size() - base);
      StageCandidates(&keys[base], n, cand.data(), /*for_write=*/true);
      for (size_t i = 0; i < n; ++i) {
        const uint64_t epoch = rehash_epoch_;
        const InsertResult r =
            InsertWithCandidates(keys[base + i], values[base + i], cand[i]);
        if (results != nullptr) results[base + i] = r;
        // An auto-growth rehash inside the insert replaced the geometry
        // and hash seeds; the remaining staged candidates were computed
        // against the old ones and must be re-derived.
        if (rehash_epoch_ != epoch && i + 1 < n) {
          StageCandidates(&keys[base + i + 1], n - i - 1, &cand[i + 1],
                          /*for_write=*/true);
        }
      }
    }
  }

  /// Statistics-free const lookup: same candidate/partition/stash-screen
  /// logic as Find but through the uncharged accessors, so it performs no
  /// mutation whatsoever. This is the read path ConcurrentMcCuckoo uses —
  /// many readers may call it under a shared lock while a writer is
  /// excluded (see src/core/concurrent_mccuckoo.h). Not meant for
  /// experiments: it records no access counts.
  bool FindNoStats(const Key& key, Value* out = nullptr) const {
    return FindNoStatsImpl(key, ComputeCandidates(key), out, *metrics_);
  }

  // --- Optimistic (seqlock-validated) read path --------------------------

  /// Attaches (or, with null, detaches) the seqlock version array the
  /// concurrent wrapper owns. While attached, every mutation opens the
  /// stripes of the buckets it touches (odd version = in flight) and
  /// publishes them at its commit point; TryFindOptimistic can then run
  /// without any lock. Single-threaded users never call this and pay only
  /// a null check per mutation choke point.
  void AttachSeqlock(SeqlockArray* seq) { seq_ = seq; }

  /// Attaches (or detaches) the striped writer-lock array for the
  /// multi-writer path (see lock_stripes.h). Must be congruent with the
  /// attached SeqlockArray (same sizing hint): holding a lock stripe grants
  /// exclusive writer rights over the matching seqlock stripe, which is
  /// what keeps the blind non-RMW version bumps valid under many writers.
  void AttachLockStripes(LockStripeArray* locks) { locks_ = locks; }

  /// Sizing hint for the version array covering this table's buckets.
  size_t seqlock_domain() const { return table_.size(); }

  /// Lock-free lookup attempt: records the versions of the candidate
  /// stripes (plus the aux stripe covering the stash), runs the
  /// statistics-free probe, and only reports kHit/kMiss if every recorded
  /// version was even and unchanged afterwards. Any writer overlap — or a
  /// probe that would need the stash — yields kContended and the caller
  /// retries or takes the shared lock. Requires an attached SeqlockArray
  /// and a single concurrent writer (the wrapper's mutex).
  OptimisticResult TryFindOptimistic(const Key& key,
                                     Value* out = nullptr) const {
    // Each optimistic attempt is one latency sample candidate; a
    // contended attempt that gets retried or falls back to the locked
    // Find is timed as its own (short) attempt.
    ScopedLatencySample lat(latency_.get(), LatencyOp::kFind);
    // Torn reads of the bucket during a racing write are discarded after
    // validation, but reading a partially-updated non-trivial type (e.g.
    // std::string mid-reallocation) would be UB before validation happens.
    static_assert(
        std::is_trivially_copyable_v<Key> && std::is_trivially_copyable_v<Value>,
        "optimistic reads require trivially copyable Key and Value");
    if (seq_ == nullptr) return OptimisticResult::kContended;
    size_t stripes[kMaxHashes + 1];
    uint32_t versions[kMaxHashes + 1];
    size_t n = 0;
    stripes[n] = seq_->aux_stripe();
    versions[n] = seq_->ReadBegin(stripes[n]);
    if (SeqlockArray::IsWriting(versions[n])) {
      return OptimisticResult::kContended;
    }
    ++n;
    // The candidate computation reads the geometry and hash seeds, which
    // Rehash replaces wholesale under the aux stripe (recorded above, so a
    // concurrent swap fails validation). The bounds check keeps a
    // torn-epoch index from escaping into the probe; bucket storage
    // replaced by a racing Rehash stays dereferenceable regardless (see
    // retired_).
    uint32_t d;
    Candidates cand;
    {
      SeqlockReadCritical crit;
      d = opts_.num_hashes;
      cand = ComputeCandidates(key);
      for (uint32_t t = 0; t < d; ++t) {
        if (cand.idx[t] >= table_.size()) return OptimisticResult::kContended;
      }
    }
    for (uint32_t t = 0; t < d; ++t) {
      const size_t s = seq_->StripeOf(cand.idx[t]);
      bool dup = false;
      for (size_t j = 1; j < n; ++j) {
        if (stripes[j] == s) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      stripes[n] = s;
      versions[n] = seq_->ReadBegin(s);
      if (SeqlockArray::IsWriting(versions[n])) {
        return OptimisticResult::kContended;
      }
      ++n;
    }
    // Probe into locals: neither the out-parameter nor the shared metrics
    // may observe a result that fails validation.
    Value tmp{};
    LookupTally tally;
    MainOutcome mo;
    {
      SeqlockReadCritical crit;
      mo = FindNoStatsMain(key, cand, &tmp, tally);
    }
    if (!seq_->Validate(stripes, versions, n)) {
      return OptimisticResult::kContended;
    }
    if (mo == MainOutcome::kCheckStash) return OptimisticResult::kContended;
    tally.FlushTo(*metrics_);
    if (mo == MainOutcome::kHit) {
      if (out != nullptr) *out = tmp;
      return OptimisticResult::kHit;
    }
    return OptimisticResult::kMiss;
  }

  /// All-or-nothing optimistic batch lookup over one tile (keys.size() <=
  /// kBatchTile): stages prefetches, records the versions of every touched
  /// stripe, probes all keys, then validates once. Returns the hit count
  /// with out/found filled, or -1 if any stripe was (or became) active or
  /// any key needed the stash — the caller re-runs the tile under the lock.
  int64_t TryFindBatchOptimistic(std::span<const Key> keys, Value* out,
                                 bool* found) const {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kFindBatch);
    static_assert(
        std::is_trivially_copyable_v<Key> && std::is_trivially_copyable_v<Value>,
        "optimistic reads require trivially copyable Key and Value");
    assert(keys.size() <= kBatchTile);
    if (seq_ == nullptr) return -1;
    if (keys.empty()) return 0;
    const size_t n_keys = keys.size();
    // Versions for every (key, candidate) stripe plus aux, recorded before
    // any data read. Duplicates are validated twice — harmless.
    std::array<size_t, kBatchTile * kMaxHashes + 1> stripes;
    std::array<uint32_t, kBatchTile * kMaxHashes + 1> versions;
    size_t n = 0;
    stripes[n] = seq_->aux_stripe();
    versions[n] = seq_->ReadBegin(stripes[n]);
    if (SeqlockArray::IsWriting(versions[n])) return -1;
    ++n;
    // Candidates under the recorded aux version, bounds-checked before any
    // probe (see TryFindOptimistic).
    uint32_t d;
    std::array<Candidates, kBatchTile> cand;
    {
      SeqlockReadCritical crit;
      d = opts_.num_hashes;
      StageCandidates(keys.data(), n_keys, cand.data(), /*for_write=*/false);
      for (size_t i = 0; i < n_keys; ++i) {
        for (uint32_t t = 0; t < d; ++t) {
          if (cand[i].idx[t] >= table_.size()) return -1;
        }
      }
    }
    for (size_t i = 0; i < n_keys; ++i) {
      for (uint32_t t = 0; t < d; ++t) {
        const size_t s = seq_->StripeOf(cand[i].idx[t]);
        stripes[n] = s;
        versions[n] = seq_->ReadBegin(s);
        if (SeqlockArray::IsWriting(versions[n])) return -1;
        ++n;
      }
    }
    std::array<Value, kBatchTile> tmpv{};
    std::array<bool, kBatchTile> tmpf{};
    LookupTally tally;
    size_t hits = 0;
    {
      SeqlockReadCritical crit;
      for (size_t i = 0; i < n_keys; ++i) {
        const MainOutcome mo =
            FindNoStatsMain(keys[i], cand[i], &tmpv[i], tally);
        if (mo == MainOutcome::kCheckStash) return -1;
        tmpf[i] = (mo == MainOutcome::kHit);
        hits += tmpf[i] ? 1 : 0;
      }
    }
    if (!seq_->Validate(stripes.data(), versions.data(), n)) return -1;
    tally.FlushTo(*metrics_);
    for (size_t i = 0; i < n_keys; ++i) {
      if (found != nullptr) found[i] = tmpf[i];
      if (out != nullptr && tmpf[i]) out[i] = tmpv[i];
    }
    return static_cast<int64_t>(hits);
  }

 private:
  /// What the main-table portion of a statistics-free lookup concluded.
  /// kCheckStash means "miss in the buckets, and the stash screen could not
  /// rule the stash out": the locked path probes the stash, the optimistic
  /// path bails out instead (the stash's unordered_map must never be
  /// traversed concurrently with a writer).
  enum class MainOutcome : uint8_t { kHit, kMiss, kCheckStash };

  /// Main-table part of FindNoStats over precomputed candidates: counters,
  /// partitions, bucket probes, and the stash screen — everything except
  /// the stash probe itself. `sink` is the live TableMetrics for scalar
  /// calls, a stack-local LookupTally for batches and optimistic attempts.
  template <typename MetricsSink>
  MainOutcome FindNoStatsMain(const Key& key, const Candidates& cand,
                              Value* out, MetricsSink& sink) const {
    const uint32_t d = opts_.num_hashes;
    uint64_t counter[kMaxHashes];
    bool tomb[kMaxHashes];
    bool any_zero = false, any_gt1 = false;
    for (uint32_t t = 0; t < d; ++t) {
      counter[t] = counters_.PeekCounter(cand.idx[t]);
      tomb[t] = counters_.PeekTombstone(cand.idx[t]);
      if (counter[t] == 0 && !tomb[t]) any_zero = true;
      if (counter[t] > 1) any_gt1 = true;
    }
    // Probe tallies, recorded once on the way out (atomics are fine from
    // the shared-lock reader path; AccessStats would not be).
    uint32_t probes_total = 0;
    std::array<uint8_t, kMaxHashes + 1> probes_by_value{};
    auto record_lookup = [&](int32_t hit_value) {
      if constexpr (kMetricsEnabled) {
        sink.RecordLookupOutcome(probes_total, hit_value);
        for (uint32_t val = 1; val <= d; ++val) {
          sink.RecordPartitionProbes(val, probes_by_value[val]);
        }
      }
    };
    if (opts_.lookup_pruning_enabled && any_zero &&
        opts_.deletion_mode != DeletionMode::kResetCounters) {
      record_lookup(-1);
      return MainOutcome::kMiss;
    }
    // The empty() read is a plain size check, memory-safe even when racing
    // a writer; optimistic callers validate the aux stripe before trusting
    // any conclusion drawn from it (including the probe skips below).
    const bool stash_empty = stash_.empty();
    const uint8_t tag_nibble = cand.tag & 0x0Fu;
    bool read_flag_zero = false;
    for (uint64_t value = d; value >= 1; --value) {
      uint32_t members[kMaxHashes];
      uint32_t s = 0;
      for (uint32_t t = 0; t < d; ++t) {
        if (!tomb[t] && counter[t] == value) members[s++] = t;
      }
      if (s < value && opts_.lookup_pruning_enabled) continue;
      const uint32_t probes =
          opts_.lookup_pruning_enabled ? s - static_cast<uint32_t>(value) + 1
                                       : s;
      for (uint32_t i = 0; i < probes; ++i) {
        ++probes_total;
        ++probes_by_value[value];
        const size_t idx = cand.idx[members[i]];
        if (counters_.PeekTag(idx) != tag_nibble && stash_empty) {
          // Fingerprint mismatch proves the occupant is a different key;
          // with the stash empty its flag can never matter, so the one
          // DRAM line this probe models is never touched. Probe tallies
          // still count it — the model performed this read.
          continue;
        }
        const Bucket& b = table_[idx];
        if (b.key == key) {
          if (out != nullptr) *out = b.value;
          record_lookup(static_cast<int32_t>(value));
          return MainOutcome::kHit;
        }
        if (!b.stash_flag) read_flag_zero = true;
      }
    }
    record_lookup(-1);
    // Stash screen, mirroring ShouldProbeStash.
    if (stash_empty) return MainOutcome::kMiss;
    if (opts_.stash_kind == StashKind::kOnchipChs) {
      return MainOutcome::kCheckStash;
    }
    if (opts_.stash_screen_enabled) {
      if (opts_.deletion_mode == DeletionMode::kDisabled &&
          (any_zero || any_gt1)) {
        return MainOutcome::kMiss;
      }
      if (opts_.deletion_mode == DeletionMode::kTombstone && any_zero) {
        return MainOutcome::kMiss;
      }
      if (read_flag_zero) return MainOutcome::kMiss;
    }
    return MainOutcome::kCheckStash;
  }

  /// FindNoStats body over precomputed candidates (shared with the batched
  /// no-stats path): the main-table probe plus, when the screen allows it,
  /// the actual stash probe.
  template <typename MetricsSink>
  bool FindNoStatsImpl(const Key& key, const Candidates& cand, Value* out,
                       MetricsSink& sink) const {
    switch (FindNoStatsMain(key, cand, out, sink)) {
      case MainOutcome::kHit:
        return true;
      case MainOutcome::kMiss:
        return false;
      case MainOutcome::kCheckStash:
        break;
    }
    const bool hit = stash_.Find(key, out);
    sink.RecordStashProbe(hit);
    return hit;
  }

 public:
  /// Deletes `key`. Requires a deletion-enabled mode; in multi-copy tables
  /// this performs zero off-chip writes (only counters change, §III.B.3).
  bool Erase(const Key& key) {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kErase);
    if (opts_.deletion_mode == DeletionMode::kDisabled) {
      std::fprintf(stderr,
                   "McCuckooTable::Erase called with DeletionMode::kDisabled; "
                   "construct the table with kResetCounters or kTombstone\n");
      std::abort();
    }
    CandidateView view;
    const int64_t found = FindInMain(key, ComputeCandidates(key), nullptr,
                                     &view);
    if (found >= 0) {
      const size_t fidx = static_cast<size_t>(found);
      const uint64_t v = view.counter[FindSlot(view, found)];
      CopySet copies = LocateAllCopies(key, fidx, v);
      for (uint32_t i = 0; i < copies.count; ++i) {
        SeqOpen(copies.idx[i]);
        if (opts_.deletion_mode == DeletionMode::kTombstone) {
          counters_.MarkDeleted(copies.idx[i]);
        } else {
          counters_.Set(copies.idx[i], 0);
        }
      }
      --size_;
      SeqFlush();
      metrics_->RecordErase();
      return true;
    }
    if (ShouldProbeStash(view)) {
      ChargeStashProbe();
      SeqOpenAux();
      const bool hit = stash_.Erase(key);
      SeqFlush();
      metrics_->RecordStashProbe(hit);
      if (hit) {
        ChargeStashWrite();
        // Flags are Bloom-like and not cleared (§III.F); false positives
        // accumulate until RebuildStashFlags().
        ++stale_stash_flag_keys_;
        metrics_->RecordErase();
        return true;
      }
    }
    return false;
  }

  /// Full rehash into a table of `new_buckets_per_table` buckets per
  /// sub-table under a fresh hash family seeded by `new_seed` — the costly
  /// remedy for insertion failures that the stash exists to avoid (§I.2),
  /// provided for completeness and for growing a long-lived table. Reads
  /// out every live item (charged: one read per old bucket plus the
  /// re-insertion traffic) and rebuilds; stashed items are re-tried first.
  /// Fails without touching the table if the new capacity cannot hold the
  /// current items.
  Status Rehash(uint64_t new_buckets_per_table, uint64_t new_seed) {
    const uint64_t t0 = MetricsNowNs();
    TableOptions new_opts = opts_;
    new_opts.buckets_per_table = new_buckets_per_table;
    new_opts.seed = new_seed;
    Status s = new_opts.Validate();
    if (!s.ok()) return s;
    if (new_opts.capacity() < TotalItems()) {
      return Status::InvalidArgument(
          "rehash target smaller than the current item count");
    }
    // "Reading out all inserted items and using a different set of hash
    // functions to put them into a bigger table" (§I.2).
    std::vector<std::pair<Key, Value>> items;
    items.reserve(TotalItems());
    std::unordered_map<Key, bool> seen;
    for (size_t idx = 0; idx < table_.size(); ++idx) {
      ++stats_->offchip_reads;  // full scan of the old table
      if (counters_.PeekCounter(idx) == 0) continue;
      const Bucket& b = table_[idx];
      if (seen.emplace(b.key, true).second) {
        items.emplace_back(b.key, b.value);
      }
    }
    for (const auto& [k, v] : stash_.Items()) {
      ++stats_->offchip_reads;
      items.emplace_back(k, v);
    }

    // The rebuild runs with growth disabled: a re-insertion overflow must
    // not recursively rehash the table being built. The caller-visible
    // growth config is restored onto the rebuilt options before commit.
    TableOptions build_opts = new_opts;
    build_opts.growth.enabled = false;
    McCuckooTable rebuilt(build_opts);
    for (const auto& [k, v] : items) {
      rebuilt.Insert(k, v);
    }
    rebuilt.opts_.growth = new_opts.growth;
    // Discard any degraded-state signal the growth-disabled rebuild
    // raised; the live policy re-evaluates pressure after the commit.
    rebuilt.metrics_->SetGrowthSuppressed(false);
    // Keep lifetime counters across the rebuild.
    rebuilt.redundant_writes_ += redundant_writes_;
    rebuilt.first_collision_items_ = first_collision_items_;
    rebuilt.first_failure_items_ = first_failure_items_;
    const size_t moved_items = items.size();
    SeqlockArray* seq = seq_;
    if (seq == nullptr) {
      *rebuilt.stats_ += *stats_;
      rebuilt.metrics_->MergeFrom(*metrics_);
      // Latency samples and the span timeline describe this table's
      // lifetime too — carry them like the metrics (the scratch rebuild's
      // re-insertion samples fold in on top).
      rebuilt.latency_->MergeFrom(*latency_);
      rebuilt.spans_ = std::move(spans_);
      // The policy and epoch describe this table's lifetime, not the
      // scratch rebuild's: carry them across the wholesale move.
      const uint64_t epoch = rehash_epoch_ + 1;
      GrowthPolicy saved_growth = std::move(growth_);
      *this = std::move(rebuilt);
      growth_ = std::move(saved_growth);
      rehash_epoch_ = epoch;
      metrics_->RecordRehash(MetricsNowNs() - t0);
      spans_.Record(SpanKind::kRehash, t0, MetricsNowNs(), moved_items);
      return Status::OK();
    }
    // The attached version array survives the rebuild (its mask mapping is
    // size-independent); the swap itself reallocates every bucket, so it
    // runs under the aux stripe to invalidate in-flight optimistic reads.
    // The concurrent wrappers' exclusive sections already hold the aux
    // stripe open around the whole call; only open it here when no outer
    // writer does, so the stripe stays odd through the commit either way
    // (WriteBegin is a blind increment — double-opening would flip it even).
    const bool aux_held =
        SeqlockArray::IsWriting(seq->Version(seq->aux_stripe()));
    if (!aux_held) seq->WriteBegin(seq->aux_stripe());
    CommitRebuildLockFree(std::move(rebuilt));  // leaves seq_ untouched
    if (!aux_held) seq->WriteEnd(seq->aux_stripe());
    metrics_->RecordRehash(MetricsNowNs() - t0);
    spans_.Record(SpanKind::kRehash, t0, MetricsNowNs(), moved_items);
    return Status::OK();
  }

  // --- Stash maintenance (§III.E/F) -------------------------------------

  /// Attempts to move stashed items back into the main table (no new
  /// kick-out chains are started: only free/redundant buckets are used).
  /// Returns how many items left the stash. Flags are left set (sticky).
  size_t TryDrainStash() {
    size_t drained = 0;
    for (const auto& [k, v] : stash_.Items()) {
      Candidates cand = ComputeCandidates(k);
      const uint32_t placed = TryPlace(k, v, cand);
      if (placed > 0) {
        SeqOpenAux();
        stash_.Erase(k);
        ChargeStashWrite();
        ++size_;
        ++drained;
      }
      SeqFlush();  // per item: bucket copies and stash removal together
    }
    return drained;
  }

  /// Resets every stash flag and re-marks the candidates of the items
  /// currently stashed, re-synchronizing the screen after stash deletions
  /// (§III.F). Charges one off-chip write per flag actually changed.
  void RebuildStashFlags() {
    // Cleared and re-set flags publish together: a reader validating
    // between the clear and the re-mark would false-miss a stashed key.
    for (size_t idx = 0; idx < table_.size(); ++idx) {
      Bucket& b = table_[idx];
      if (b.stash_flag) {
        SeqOpen(idx);
        b.stash_flag = false;
        ++stats_->offchip_writes;
      }
    }
    for (const auto& [k, v] : stash_.Items()) {
      (void)v;
      Candidates cand = ComputeCandidates(k);
      for (uint32_t t = 0; t < opts_.num_hashes; ++t) SetFlag(cand.idx[t]);
    }
    stale_stash_flag_keys_ = 0;
    SeqFlush();
  }

  // --- Introspection ----------------------------------------------------

  /// Live keys resident in the main table (excludes the stash).
  size_t size() const { return size_; }

  /// Keys currently parked in the stash.
  size_t stash_size() const { return stash_.size(); }

  /// Live keys anywhere (main table + stash).
  size_t TotalItems() const { return size_ + stash_.size(); }

  /// Total buckets (= key capacity for the single-slot layout).
  uint64_t capacity() const { return table_.size(); }

  /// Distinct-items-to-buckets ratio, the paper's "load ratio".
  double load_factor() const {
    return static_cast<double>(TotalItems()) / static_cast<double>(capacity());
  }

  const TableOptions& options() const { return opts_; }
  const AccessStats& stats() const { return *stats_; }
  void ResetStats() { *stats_ = AccessStats{}; }

  /// Point-in-time metrics copy with the occupancy/capacity gauges filled
  /// (all zeros under -DMCCUCKOO_NO_METRICS). Safe to call concurrently
  /// with readers; pair with writer exclusion for exact totals.
  MetricsSnapshot SnapshotMetrics() const {
    MetricsSnapshot s = metrics_->Snapshot();
    s.occupancy_items = TotalItems();
    s.capacity_slots = capacity();
    latency_->FoldInto(&s);
    for (size_t k = 0; k < kSpanKinds; ++k) {
      s.span_counts[k] += spans_.Totals()[k];
    }
    return s;
  }

  /// Clears the metrics, the kick-chain trace ring, the latency samples,
  /// and the span ring (AccessStats are separate; see ResetStats).
  void ResetMetrics() {
    metrics_->Reset();
    trace_.Clear();
    latency_->Reset();
    spans_.Clear();
  }

  /// Kick-chain trace ring (post-mortem inspection of recent chains).
  const TraceRecorder& trace() const { return trace_; }

  /// Span timeline ring (growth/rehash/reseed/dead-end/spill events) —
  /// feed Events() to ExportChromeTrace for a chrome://tracing view.
  const SpanRecorder& spans() const { return spans_; }

  /// Sampled op-latency recorder (configure via
  /// TableOptions::latency_sample_period or set_sample_period).
  LatencyRecorder& latency() const { return *latency_; }

  /// Scans the table into an occupancy/counter heatmap at the requested
  /// region resolution (full-table scan; scrape-time cost only).
  HeatmapSnapshot Heatmap(size_t regions = 64) const {
    HeatmapSnapshot h;
    const size_t buckets = table_.size();
    if (regions == 0) regions = 1;
    if (regions > buckets) regions = buckets;
    h.region_occupied.assign(regions, 0);
    h.region_slots.assign(regions, 0);
    h.total_buckets = buckets;
    h.total_slots = buckets;  // single-slot layout
    const size_t per_region = (buckets + regions - 1) / regions;
    for (size_t idx = 0; idx < buckets; ++idx) {
      const size_t region = idx / per_region;
      ++h.region_slots[region];
      const uint8_t c = counters_.PeekCounter(idx);
      const size_t cv = c < kMetricsPartitions ? c : kMetricsPartitions - 1;
      ++h.counter_values[cv];
      if (c != 0) {
        ++h.region_occupied[region];
        ++h.occupied_slots;
      }
    }
    return h;
  }

  /// Probe kernel the lookup paths use. The single-slot table screens with
  /// one fingerprint byte per candidate — a header-screened scalar probe;
  /// only the blocked table has whole-bucket headers for the SIMD kernels.
  const char* probe_variant() const { return "scalar"; }

  /// Items present when the first real collision happened (0 = none yet) —
  /// Table I's metric.
  uint64_t first_collision_items() const { return first_collision_items_; }

  /// Items present when the first insertion failure (stash spill) happened
  /// (0 = none yet) — Fig 11's metric.
  uint64_t first_failure_items() const { return first_failure_items_; }

  /// Total proactive redundant copy writes so far (copies beyond each
  /// item's first). Theorem 2 bounds this by capacity * (1 + sum_{t=3..d}
  /// 1/t); for d = 3: 5/6 of the bucket count.
  uint64_t redundant_writes() const { return redundant_writes_; }

  /// Keys erased from the stash whose flags are now stale (false-positive
  /// pressure on the screen; see RebuildStashFlags).
  uint64_t stale_stash_flag_keys() const { return stale_stash_flag_keys_; }

  /// Times a CHS-style on-chip stash exceeded its capacity — events where a
  /// real deployment would have had to rehash (§II.B).
  uint64_t forced_rehash_events() const { return forced_rehash_events_; }

  /// Bytes of modeled on-chip memory (copy counters, plus MinCounter's
  /// kick-history array when that policy is active).
  size_t onchip_memory_bytes() const {
    return counters_.counter_bytes() + kick_history_.memory_bytes();
  }

  /// Invokes `fn(key, value)` once per live key (main table + stash), in
  /// unspecified order. Uncharged maintenance/snapshot path.
  template <typename Fn>
  void ForEachItem(Fn&& fn) const {
    std::unordered_map<Key, bool> seen;
    for (size_t idx = 0; idx < table_.size(); ++idx) {
      if (counters_.PeekCounter(idx) == 0) continue;
      const Bucket& b = table_[idx];
      if (seen.emplace(b.key, true).second) fn(b.key, b.value);
    }
    for (const auto& [k, v] : stash_.Items()) fn(k, v);
  }

  /// Number of live copies of `key` in the main table (uncharged; testing).
  uint32_t CountCopies(const Key& key) const {
    Candidates cand = ComputeCandidates(key);
    uint32_t copies = 0;
    for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
      const size_t idx = cand.idx[t];
      if (counters_.PeekCounter(idx) > 0 && table_[idx].key == key) ++copies;
    }
    return copies;
  }

  /// Exhaustively checks the structural invariants (uncharged; testing):
  /// every live bucket's occupant hashes to that bucket; all copies of a
  /// key are identical; every copy's counter equals the key's copy count;
  /// tombstones only exist in kTombstone mode.
  Status ValidateInvariants() const {
    std::unordered_map<Key, std::vector<size_t>> copies;
    for (size_t idx = 0; idx < table_.size(); ++idx) {
      const uint64_t c = counters_.PeekCounter(idx);
      if (counters_.PeekTombstone(idx)) {
        if (opts_.deletion_mode != DeletionMode::kTombstone) {
          return Status::Internal("tombstone outside kTombstone mode at " +
                                  std::to_string(idx));
        }
        if (c != 0) {
          return Status::Internal("tombstone with non-zero counter at " +
                                  std::to_string(idx));
        }
        continue;
      }
      if (c == 0) continue;
      if (c > opts_.num_hashes) {
        return Status::Internal("counter exceeds d at " + std::to_string(idx));
      }
      const Key& k = table_[idx].key;
      const uint32_t t = static_cast<uint32_t>(idx / opts_.buckets_per_table);
      const uint64_t b = idx % opts_.buckets_per_table;
      if (family_.Bucket(k, t) != b) {
        return Status::Internal("occupant does not hash to bucket " +
                                std::to_string(idx));
      }
      if (counters_.PeekTag(idx) != (family_.TagOf(k) & 0x0Fu)) {
        return Status::Internal("stale bucket fingerprint at " +
                                std::to_string(idx));
      }
      copies[k].push_back(idx);
    }
    for (const auto& [k, positions] : copies) {
      for (size_t idx : positions) {
        if (counters_.PeekCounter(idx) != positions.size()) {
          return Status::Internal("counter != copy count at " +
                                  std::to_string(idx));
        }
        if (!(table_[idx].value == table_[positions.front()].value)) {
          return Status::Internal("diverged copy values for a key");
        }
      }
    }
    if (copies.size() != size_) {
      return Status::Internal("size_ does not match live distinct keys: " +
                              std::to_string(size_) + " vs " +
                              std::to_string(copies.size()));
    }
    return Status::OK();
  }

  /// Debug-build deep check for the chaos/property harnesses:
  /// ValidateInvariants plus the stash-screen rule that every stashed
  /// key's candidate buckets carry the stash flag (flags may be stale-set
  /// — they are sticky by design — but never missing). Compiles to an
  /// unconditional OK in NDEBUG builds so release benchmarks can keep the
  /// call sites.
  Status CheckInvariants() const {
#ifdef NDEBUG
    return Status::OK();
#else
    if (Status s = ValidateInvariants(); !s.ok()) return s;
    if (opts_.stash_kind == StashKind::kOffchip) {
      for (const auto& [k, v] : stash_.Items()) {
        (void)v;
        const Candidates cand = ComputeCandidates(k);
        for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
          if (!table_[cand.idx[t]].stash_flag) {
            return Status::Internal(
                "stashed key lacks a candidate stash flag at bucket " +
                std::to_string(cand.idx[t]));
          }
          // Without deletions the screen additionally relies on every
          // stashed key's candidates holding sole copies forever: the key
          // was stashed only after TryPlace saw all-ones, and a counter-1
          // bucket can never fall to 0 nor climb past 1 again.
          if (opts_.deletion_mode == DeletionMode::kDisabled &&
              counters_.PeekCounter(cand.idx[t]) != 1) {
            return Status::Internal(
                "stashed key candidate bucket " + std::to_string(cand.idx[t]) +
                " has counter " +
                std::to_string(counters_.PeekCounter(cand.idx[t])) +
                " != 1 under kDisabled; the stash screen would veto lookups");
          }
        }
      }
    }
    return Status::OK();
#endif
  }

  /// Read-only view of the auto-growth state machine.
  const GrowthPolicy& growth_policy() const { return growth_; }

  /// Completed rehash commits over this table's lifetime (manual and
  /// growth-triggered). Changes exactly when the geometry/seeds may have.
  uint64_t rehash_epoch() const { return rehash_epoch_; }

  // ===== Multi-writer (striped-lock) operations ===========================
  //
  // The Concurrent* entry points below let many writers mutate the table at
  // once under an attached LockStripeArray (congruent with the attached
  // SeqlockArray, see lock_stripes.h). The protocol, in brief:
  //
  //  * An operation BLOCK-acquires only its own key's candidate stripes —
  //    sorted, deduplicated, known up front — plus (last) the aux stripe,
  //    which is globally maximal. Everything discovered mid-operation (BFS
  //    chain nodes, the terminal, a displaced victim's other copies) is
  //    TRY-locked only; a failed try-lock releases the mid-op suffix and
  //    replans or restarts. Blocking acquisition in ascending order with no
  //    later blocking waits is deadlock-free by the classic ordering
  //    argument.
  //  * Every counter mutation anywhere in the table happens under that
  //    bucket's stripe. Holding a stripe therefore pins its buckets'
  //    counters AND the copy-sets of the items in them: displacing a copy
  //    of item X requires try-locking all of X's other copies first, which
  //    a holder of any one of them blocks.
  //  * Eviction runs the BFS engine in plan/validate/apply form regardless
  //    of the configured policy (the walk policies mutate mid-chain and
  //    lean on shared RNG/history state). The plan phase reads racily and
  //    mutates nothing; the chain is then try-claimed and re-validated
  //    under the claims; the apply phase runs terminal-first, and its only
  //    fallible step (claiming a redundant terminal occupant's other
  //    copies) fails before any mutation — so a failure replans cleanly.
  //  * Seqlock windows for the whole operation are opened in a stack-local
  //    SeqlockWriterSet and closed *before* the stripe locks are released:
  //    the next holder of a stripe owns its version cell again only after
  //    our odd window is closed.
  //  * These paths charge no AccessStats and record no trace/span/kick
  //    history (those are writer-exclusion structures); TableMetrics and
  //    the latency recorder are atomic and recorded normally.
  //
  // Callers (the ConcurrentMcCuckoo wrapper) hold a shared "drain" lock for
  // every operation; growth escalates to the exclusive side plus a full
  // LockStripeDrain, so in-flight operations never see a geometry change —
  // which is also why mid-operation bucket indices stay in bounds.

  /// Multi-writer insert of a key assumed not to be present (same contract
  /// as Insert: duplicates corrupt the copy invariants). `growth_mu`
  /// serializes the growth-policy bookkeeping; `*wants_growth` is set when
  /// the policy asks for a rehash/reseed, which the caller performs under
  /// full exclusivity via MaybeGrowExclusive().
  InsertResult ConcurrentInsert(const Key& key, const Value& value,
                                std::mutex& growth_mu, bool* wants_growth) {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kInsert);
    assert(locks_ != nullptr);
    *wants_growth = false;
    const uint64_t t0 = MetricsNowNs();
    const Candidates cand = ComputeCandidates(key);
    LockStripeSet ls(*locks_, metrics_.get());
    SeqlockWriterSet ws;
    bool collided = false;
    bool need_restart = false;
    uint32_t chain_len = 0, bfs_nodes = 0, bfs_budget = 0;
    InsertResult r;
    for (;;) {
      AcquireCandidateStripes(ls, cand);
      r = ConcurrentPlaceOrEvict(key, value, cand, ls, ws, &collided,
                                 &need_restart, &chain_len, &bfs_nodes,
                                 &bfs_budget);
      if (!need_restart) break;
      // A redundant candidate's other copies are transiently claimed by
      // another writer; back off completely (breaking hold-and-wait) and
      // redo the acquisition. Nothing was mutated, no seq window is open.
      ls.ReleaseAll();
      std::this_thread::yield();
    }
    ConcurrentFlush(ws, ls);
    metrics_->RecordInsert(chain_len, MetricsNowNs() - t0);
    if (collided) {
      metrics_->RecordPolicyChain(static_cast<uint32_t>(EvictionPolicy::kBfs),
                                  chain_len);
      metrics_->RecordBfsNodes(bfs_nodes);
    }
    *wants_growth = ConcurrentGrowthCheck(
        growth_mu, r != InsertResult::kInserted, chain_len, bfs_nodes,
        bfs_budget);
    return r;
  }

  /// Multi-writer InsertOrAssign: updates every copy in place when the key
  /// exists (main table or stash), inserts otherwise. The candidate
  /// stripes stay held across the found/stash/insert decision, so the
  /// presence check cannot go stale before the insert.
  InsertResult ConcurrentInsertOrAssign(const Key& key, const Value& value,
                                        std::mutex& growth_mu,
                                        bool* wants_growth) {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kInsert);
    assert(locks_ != nullptr);
    *wants_growth = false;
    const uint64_t t0 = MetricsNowNs();
    const Candidates cand = ComputeCandidates(key);
    LockStripeSet ls(*locks_, metrics_.get());
    SeqlockWriterSet ws;
    bool collided = false;
    bool need_restart = false;
    uint32_t chain_len = 0, bfs_nodes = 0, bfs_budget = 0;
    InsertResult r;
    for (;;) {
      AcquireCandidateStripes(ls, cand);
      // Re-locate on every (re)acquisition: between restarts another
      // writer of the same key may have inserted it.
      const CopySet copies = ConcurrentLocateCopies(key, cand);
      if (copies.count > 0) {
        for (uint32_t i = 0; i < copies.count; ++i) {
          // Value-only update: the occupant's key, tag and counter are
          // already exactly this key's (located under the held stripes).
          SeqOpenIn(ws, copies.idx[i]);
          table_[copies.idx[i]].value = value;
        }
        ConcurrentFlush(ws, ls);
        return InsertResult::kUpdated;
      }
      if (ConcurrentShouldProbeStash(cand)) {
        ls.AcquireAux();
        const bool in_stash = stash_.Find(key, nullptr);
        metrics_->RecordStashProbe(in_stash);
        if (in_stash) {
          SeqOpenAuxIn(ws);
          stash_.Insert(key, value);
          ConcurrentFlush(ws, ls);
          return InsertResult::kUpdated;
        }
        // Keep aux held through the insert attempt: it is the maximal
        // stripe and any later AcquireAux is an idempotent no-op.
      }
      r = ConcurrentPlaceOrEvict(key, value, cand, ls, ws, &collided,
                                 &need_restart, &chain_len, &bfs_nodes,
                                 &bfs_budget);
      if (!need_restart) break;
      ls.ReleaseAll();
      std::this_thread::yield();
    }
    ConcurrentFlush(ws, ls);
    metrics_->RecordInsert(chain_len, MetricsNowNs() - t0);
    if (collided) {
      metrics_->RecordPolicyChain(static_cast<uint32_t>(EvictionPolicy::kBfs),
                                  chain_len);
      metrics_->RecordBfsNodes(bfs_nodes);
    }
    *wants_growth = ConcurrentGrowthCheck(
        growth_mu, r != InsertResult::kInserted, chain_len, bfs_nodes,
        bfs_budget);
    return r;
  }

  /// Multi-writer erase: all copies of the key lie among the held
  /// candidates, so locating them under the stripes is exact.
  bool ConcurrentErase(const Key& key) {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kErase);
    assert(locks_ != nullptr);
    if (opts_.deletion_mode == DeletionMode::kDisabled) {
      std::fprintf(stderr,
                   "McCuckooTable::ConcurrentErase called with "
                   "DeletionMode::kDisabled; construct the table with "
                   "kResetCounters or kTombstone\n");
      std::abort();
    }
    const Candidates cand = ComputeCandidates(key);
    LockStripeSet ls(*locks_, metrics_.get());
    SeqlockWriterSet ws;
    AcquireCandidateStripes(ls, cand);
    const CopySet copies = ConcurrentLocateCopies(key, cand);
    if (copies.count > 0) {
      for (uint32_t i = 0; i < copies.count; ++i) {
        SeqOpenIn(ws, copies.idx[i]);
        if (opts_.deletion_mode == DeletionMode::kTombstone) {
          counters_.AtomicMarkDeleted(copies.idx[i]);
        } else {
          counters_.AtomicSet(copies.idx[i], 0);
        }
      }
      size_.FetchSub(1);
      ConcurrentFlush(ws, ls);
      metrics_->RecordErase();
      return true;
    }
    if (ConcurrentShouldProbeStash(cand)) {
      ls.AcquireAux();
      SeqOpenAuxIn(ws);
      const bool hit = stash_.Erase(key);
      ConcurrentFlush(ws, ls);
      metrics_->RecordStashProbe(hit);
      if (hit) {
        // Stash items are not counted in size_, so no decrement here.
        stale_stash_flag_keys_.FetchAdd(1);
        metrics_->RecordErase();
        return true;
      }
      return false;
    }
    ls.ReleaseAll();
    return false;
  }

  /// Striped-lock reader fallback for the multi-writer mode: takes the
  /// key's candidate stripes (blocking, ordered) instead of any table-wide
  /// lock, so a fallback read waits only for writers touching its own
  /// candidates. Does not require the wrapper's drain lock: a rehash
  /// cannot *start* while we hold any stripe (growth drains them all), and
  /// one that committed between candidate computation and acquisition is
  /// caught by the epoch check and retried.
  bool FindStriped(const Key& key, Value* out = nullptr) const {
    assert(locks_ != nullptr);
    ScopedLatencySample lat(latency_.get(), LatencyOp::kFind);
    for (;;) {
      const uint64_t epoch = rehash_epoch_.load();
      const uint32_t d = opts_.num_hashes;
      Candidates cand;
      bool in_range = true;
      {
        // Geometry may be swapping under us until the stripes are held.
        SeqlockReadCritical crit;
        cand = ComputeCandidates(key);
        for (uint32_t t = 0; t < d; ++t) {
          in_range = in_range && cand.idx[t] < table_.size();
        }
      }
      if (!in_range) continue;  // torn mid-commit read; retry
      LockStripeSet ls(*locks_, metrics_.get());
      {
        std::array<size_t, kMaxHashes> stripes;
        for (uint32_t t = 0; t < d; ++t) {
          stripes[t] = locks_->StripeOf(cand.idx[t]);
        }
        ls.AcquireOrdered(stripes.data(), d);
      }
      // The stripe acquisitions are acquire barriers and the committing
      // rehash bumps the epoch before releasing its drain, so an unchanged
      // epoch here proves the candidates match the live geometry.
      if (rehash_epoch_.load() != epoch) continue;
      Value tmp{};
      LookupTally tally;
      MainOutcome mo;
      {
        // Neighbouring buckets in the same cache lines may still be
        // mutated by writers holding *other* stripes.
        SeqlockReadCritical crit;
        mo = FindNoStatsMain(key, cand, &tmp, tally);
      }
      bool hit = (mo == MainOutcome::kHit);
      if (mo == MainOutcome::kCheckStash) {
        ls.AcquireAux();
        hit = stash_.Find(key, &tmp);
        tally.RecordStashProbe(hit);
      }
      tally.FlushTo(*metrics_);
      ls.ReleaseAll();
      if (hit && out != nullptr) *out = tmp;
      return hit;
    }
  }

  /// Growth-policy bookkeeping for one concurrent insert, serialized by
  /// the wrapper's growth mutex (GrowthPolicy state is not thread-safe).
  /// Returns true when the policy wants a rehash/reseed; the caller then
  /// escalates to the exclusive drain and calls MaybeGrowExclusive().
  bool ConcurrentGrowthCheck(std::mutex& growth_mu, bool overflowed,
                             uint32_t chain_len, uint32_t bfs_nodes,
                             uint32_t bfs_budget) {
    std::lock_guard<std::mutex> g(growth_mu);
    growth_.ObserveInsert(overflowed, chain_len, opts_.maxloop, bfs_nodes,
                          bfs_budget);
    const GrowthDecision d = growth_.Decide(
        {ApproxTotalItems(), opts_.capacity(), ApproxStashSize(),
         opts_.buckets_per_table});
    if (d.action == GrowthAction::kSuppressed) {
      metrics_->SetGrowthSuppressed(true);
      return false;
    }
    return d.action != GrowthAction::kNone;
  }

  /// Runs the growth engine under full exclusivity: the caller holds the
  /// exclusive drain plus every lock stripe (LockStripeDrain). Re-decides
  /// from scratch, so if a competing writer already grew the table this is
  /// a no-op.
  void MaybeGrowExclusive() { MaybeGrow(); }

  /// Racy item-count estimates for growth decisions and wrapper
  /// introspection (annotated: the stash map may be mutating under aux).
  size_t ApproxStashSize() const {
    SeqlockReadCritical crit;
    return stash_.size();
  }
  size_t ApproxTotalItems() const { return size_.load() + ApproxStashSize(); }

 private:
  // --- multi-writer internals --------------------------------------------

  /// Bounded replans for a contended/invalidated BFS chain before the
  /// operation falls back to the stash.
  static constexpr int kMaxChainReplans = 3;

  void AcquireCandidateStripes(LockStripeSet& ls, const Candidates& cand) {
    std::array<size_t, kMaxHashes> stripes;
    const uint32_t d = opts_.num_hashes;
    for (uint32_t t = 0; t < d; ++t) {
      stripes[t] = locks_->StripeOf(cand.idx[t]);
    }
    ls.AcquireOrdered(stripes.data(), d);
  }

  // Seqlock hooks against a stack-local writer set: concurrent operations
  // must not share the member seq_open_ (it is single-writer state).
  void SeqOpenIn(SeqlockWriterSet& ws, size_t bucket_idx) {
    if (seq_ != nullptr) ws.Open(*seq_, seq_->StripeOf(bucket_idx));
  }
  void SeqOpenAuxIn(SeqlockWriterSet& ws) {
    if (seq_ != nullptr) ws.Open(*seq_, seq_->aux_stripe());
  }

  /// Publishes the operation's seqlock windows, then releases its stripe
  /// locks — strictly in that order, so the next stripe holder owns the
  /// version cells only after our odd windows closed. Also flushes the
  /// per-operation lock-contention tallies. Safe to call with nothing
  /// held/open.
  void ConcurrentFlush(SeqlockWriterSet& ws, LockStripeSet& ls) {
    if (seq_ != nullptr) ws.CloseAll(*seq_);
    ls.ReleaseAll();
  }

  /// Uncharged bucket store under a held stripe (the concurrent paths run
  /// outside the paper's single-writer access model, so AccessStats stay
  /// untouched; see the section comment).
  void ConcurrentStoreBucket(SeqlockWriterSet& ws, size_t idx, const Key& key,
                             const Value& value) {
    SeqOpenIn(ws, idx);
    Bucket& b = table_[idx];
    b.key = key;
    b.value = value;
    counters_.AtomicSetTag(idx, family_.TagOf(key));
  }

  void ConcurrentSetFlag(SeqlockWriterSet& ws, size_t idx) {
    SeqOpenIn(ws, idx);
    table_[idx].stash_flag = true;
  }

  /// Exact copy location under held candidate stripes: every copy of `key`
  /// lives in one of its candidates, whose occupants cannot change while
  /// the stripes are held.
  CopySet ConcurrentLocateCopies(const Key& key, const Candidates& cand) {
    CopySet out{};
    for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
      const size_t idx = cand.idx[t];
      if (counters_.PeekCounter(idx) > 0 && table_[idx].key == key) {
        out.idx[out.count++] = idx;
      }
    }
    return out;
  }

  /// ShouldProbeStash for the concurrent paths, rebuilt from the held
  /// candidates. Unlike the CandidateView form it can consult every
  /// stash_flag exactly (the stripes are held), which is a strictly
  /// stronger — still sound — screen: a stashed key set all d flags.
  bool ConcurrentShouldProbeStash(const Candidates& cand) {
    {
      // Benign race on the map size: our own key's stash membership is
      // pinned by the held candidate stripes (any writer stashing or
      // un-stashing it needs them), and the happens-before edge through
      // those stripes makes its effect on empty() visible.
      SeqlockReadCritical crit;
      if (stash_.empty()) return false;
    }
    if (opts_.stash_kind == StashKind::kOnchipChs) return true;
    if (!opts_.stash_screen_enabled) return true;
    const uint32_t d = opts_.num_hashes;
    bool any_zero = false, any_gt1 = false, any_flag_zero = false;
    for (uint32_t t = 0; t < d; ++t) {
      const size_t idx = cand.idx[t];
      const uint64_t c = counters_.PeekCounter(idx);
      const bool tomb = opts_.deletion_mode == DeletionMode::kTombstone &&
                        counters_.PeekTombstone(idx);
      if (c == 0 && !tomb) any_zero = true;
      if (c > 1) any_gt1 = true;
      if (!table_[idx].stash_flag) any_flag_zero = true;
    }
    if (opts_.deletion_mode == DeletionMode::kDisabled &&
        (any_zero || any_gt1)) {
      return false;
    }
    if (opts_.deletion_mode == DeletionMode::kTombstone && any_zero) {
      return false;
    }
    return !any_flag_zero;
  }

  bool AllCandidatesSoleCopies(const Candidates& cand) const {
    for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
      if (counters_.PeekCounter(cand.idx[t]) != 1) return false;
    }
    return true;
  }

  /// Place-or-evict body shared by ConcurrentInsert/InsertOrAssign. Called
  /// with the candidate stripes held. Sets *need_restart (with nothing
  /// mutated and no seq window open) when a redundant candidate's victim
  /// copies could not be claimed — the caller releases everything and
  /// retries, which cannot be done here without breaking lock ordering.
  InsertResult ConcurrentPlaceOrEvict(const Key& key, const Value& value,
                                      const Candidates& cand,
                                      LockStripeSet& ls, SeqlockWriterSet& ws,
                                      bool* collided, bool* need_restart,
                                      uint32_t* chain_len, uint32_t* nodes,
                                      uint32_t* budget) {
    *collided = false;
    *need_restart = false;
    const uint32_t placed = ConcurrentTryPlace(key, value, cand, ls, ws);
    if (placed > 0) {
      size_.FetchAdd(1);
      return InsertResult::kInserted;
    }
    if (!AllCandidatesSoleCopies(cand)) {
      // A candidate still holds a redundant copy we failed to claim. BFS
      // requires all-ones roots (and so does the stash screen), so this
      // transient contention must be resolved by a full restart.
      *need_restart = true;
      return InsertResult::kFailed;
    }
    *collided = true;
    uint64_t expect_zero = 0;
    first_collision_items_.CompareExchange(expect_zero,
                                           ApproxTotalItems() + 1);
    return ConcurrentBfsInsert(key, value, cand, ls, ws, chain_len, nodes,
                               budget);
  }

  /// TryPlace under held candidate stripes. Differences from the
  /// single-writer form: counter updates go through the CAS accessors, and
  /// a redundant victim whose other copies cannot be try-claimed is
  /// skipped rather than waited for (the caller restarts when that leaves
  /// a non-sole-copy candidate unplaced).
  uint32_t ConcurrentTryPlace(const Key& key, const Value& value,
                              const Candidates& cand, LockStripeSet& ls,
                              SeqlockWriterSet& ws) {
    const uint32_t d = opts_.num_hashes;
    std::array<bool, kMaxHashes> taken{};
    std::array<size_t, kMaxHashes> placed{};
    uint32_t n_placed = 0;
    // Principle 1: occupy all the empty candidate buckets (tombstones read
    // as counter 0 through PeekCounter and are recycled transparently).
    for (uint32_t t = 0; t < d; ++t) {
      if (counters_.PeekCounter(cand.idx[t]) == 0) {
        ConcurrentStoreBucket(ws, cand.idx[t], key, value);
        placed[n_placed++] = cand.idx[t];
        taken[t] = true;
      }
    }
    // Principles 2+3, as in TryPlace (re-read each round; never touch 1).
    while (n_placed < d) {
      int best = -1;
      uint64_t best_v = 0;
      for (uint32_t t = 0; t < d; ++t) {
        if (taken[t]) continue;
        const uint64_t cur = counters_.PeekCounter(cand.idx[t]);
        if (cur > best_v) {
          best_v = cur;
          best = static_cast<int>(t);
        }
      }
      if (best < 0 || best_v < 2 || best_v < n_placed + 2) break;
      if (!ConcurrentOverwriteRedundant(ls, ws, cand.idx[best], best_v, key,
                                        value)) {
        taken[best] = true;  // contended victim: consider the next-best
        continue;
      }
      placed[n_placed++] = cand.idx[best];
      taken[best] = true;
    }
    if (n_placed == 0) return 0;
    for (uint32_t i = 0; i < n_placed; ++i) {
      SeqOpenIn(ws, placed[i]);
      counters_.AtomicSet(placed[i], n_placed);
    }
    redundant_writes_.FetchAdd(n_placed - 1);
    return n_placed;
  }

  /// OverwriteRedundantCopy under the claim-then-move discipline: try-lock
  /// the victim item's other candidate stripes, identify its copies
  /// exactly by key compare (the copy-set is frozen — changing it would
  /// need the victim's stripe, which we hold), decrement them, then
  /// overwrite. Fails cleanly BEFORE any mutation when a claim fails; on
  /// success the claimed stripes stay held until the operation ends.
  bool ConcurrentOverwriteRedundant(LockStripeSet& ls, SeqlockWriterSet& ws,
                                    size_t victim_idx, uint64_t v,
                                    const Key& key, const Value& value) {
    assert(v >= 2);
    const size_t held_before = ls.held_count();
    const Key victim_key = table_[victim_idx].key;  // stripe held: stable
    const Candidates vc = ComputeCandidates(victim_key);
    for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
      if (vc.idx[t] == victim_idx) continue;
      if (!ls.TryAcquire(locks_->StripeOf(vc.idx[t]))) {
        ls.ReleaseSuffix(held_before);
        return false;
      }
    }
    CopySet others{};
    for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
      const size_t idx = vc.idx[t];
      if (idx == victim_idx) continue;
      if (counters_.PeekCounter(idx) == v && table_[idx].key == victim_key) {
        others.idx[others.count++] = idx;
      }
    }
    assert(others.count == v - 1);
    for (uint32_t i = 0; i < others.count; ++i) {
      SeqOpenIn(ws, others.idx[i]);
      counters_.AtomicDecrement(others.idx[i]);
    }
    ConcurrentStoreBucket(ws, victim_idx, key, value);
    return true;
  }

  /// Re-validates a racily planned BFS chain under its claimed stripes:
  /// every interior node must still hold a sole copy whose alternates
  /// include the next hop (linkage recomputed from the now-stable key).
  bool ValidateChain(const BfsPathResult& path) const {
    for (size_t i = 0; i < path.node.size(); ++i) {
      const size_t bucket = static_cast<size_t>(path.node[i]);
      if (counters_.PeekCounter(bucket) != 1) return false;
      const uint64_t next =
          i + 1 < path.node.size() ? path.node[i + 1] : path.terminal;
      const Candidates oc = ComputeCandidates(table_[bucket].key);
      bool linked = false;
      for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
        linked = linked || (oc.idx[t] == next);
      }
      if (!linked) return false;
    }
    return true;
  }

  /// BfsInsert in plan/validate/apply form. Entered with the candidate
  /// stripes held and every candidate a sole copy. The plan phase reads
  /// racily (annotated) and mutates nothing; indices stay in bounds
  /// because geometry cannot change while we hold stripes. The claim
  /// phase try-locks nodes[1..] and the terminal (node[0] is a held
  /// root); validation re-checks the chain under the claims; the apply
  /// phase mirrors the single-writer backward shift. Skips the shared
  /// BfsThrottle (its streak state is single-writer) and always uses the
  /// full node budget.
  InsertResult ConcurrentBfsInsert(const Key& key, const Value& value,
                                   const Candidates& cand, LockStripeSet& ls,
                                   SeqlockWriterSet& ws, uint32_t* chain_len,
                                   uint32_t* nodes_out, uint32_t* budget_out) {
    const uint32_t d = opts_.num_hashes;
    std::array<uint64_t, kMaxHashes> roots{};
    for (uint32_t t = 0; t < d; ++t) roots[t] = cand.idx[t];
    *budget_out = BfsNodeBudget(opts_.maxloop);
    *chain_len = 0;
    *nodes_out = 0;
    for (int attempt = 0; attempt < kMaxChainReplans; ++attempt) {
      BfsPathResult path;
      {
        SeqlockReadCritical crit;  // unclaimed buckets mutate underneath
        path = BfsFindPath(
            roots.data(), d, *budget_out,
            [&](uint64_t id, auto&& emit, auto&& terminal) {
              const size_t bucket = static_cast<size_t>(id);
              const Key okey = table_[bucket].key;  // racy, re-validated
              const Candidates oc = ComputeCandidates(okey);
              for (uint32_t t = 0; t < d; ++t) {
                const size_t alt = oc.idx[t];
                if (alt == bucket) continue;
                if (counters_.PeekCounter(alt) != 1) {
                  terminal(alt);
                  return;
                }
                __builtin_prefetch(&table_[alt], 0, 1);
                emit(alt);
              }
            });
      }
      *nodes_out += path.nodes_expanded;
      if (!path.found) break;  // genuine dead end: stash below
      const size_t held_before = ls.held_count();
      bool claimed = true;
      for (size_t i = 1; i < path.node.size() && claimed; ++i) {
        claimed = ls.TryAcquireChain(locks_->StripeOf(path.node[i]));
      }
      if (claimed) {
        claimed = ls.TryAcquireChain(locks_->StripeOf(path.terminal));
      }
      if (claimed) claimed = ValidateChain(path);
      uint64_t term_v = 0;
      if (claimed) {
        term_v = counters_.PeekCounter(path.terminal);
        if (term_v == 1) claimed = false;  // no longer a terminal
      }
      bool applied = claimed;
      if (claimed) {
        // Apply backward. The terminal move runs first and is the only
        // fallible step; its failure leaves the table untouched.
        size_t dst = static_cast<size_t>(path.terminal);
        for (size_t i = path.node.size(); i-- > 0;) {
          const size_t src = static_cast<size_t>(path.node[i]);
          const Bucket moved = table_[src];
          if (dst == static_cast<size_t>(path.terminal)) {
            if (term_v >= 2) {
              if (!ConcurrentOverwriteRedundant(ls, ws, dst, term_v,
                                                moved.key, moved.value)) {
                applied = false;
                break;
              }
            } else {
              ConcurrentStoreBucket(ws, dst, moved.key, moved.value);
            }
            SeqOpenIn(ws, dst);
            counters_.AtomicSet(dst, 1);  // the moved item is a sole copy
          } else {
            ConcurrentStoreBucket(ws, dst, moved.key, moved.value);
            // Counter stays 1: dst already held a sole copy.
          }
          dst = src;
        }
      }
      if (!applied) {
        ls.ReleaseSuffix(held_before);
        std::this_thread::yield();
        continue;
      }
      ConcurrentStoreBucket(ws, static_cast<size_t>(path.node.front()), key,
                            value);
      size_.FetchAdd(1);
      *chain_len = static_cast<uint32_t>(path.node.size());
      return InsertResult::kInserted;
    }
    // Stash tail. The root stripes have been held continuously since
    // ConcurrentTryPlace proved all-ones and nothing placed since, so the
    // kDisabled stash screen's precondition holds exactly as in the
    // single-writer path; the flags land on the held roots themselves.
    uint64_t expect_zero = 0;
    first_failure_items_.CompareExchange(expect_zero, ApproxTotalItems() + 1);
    ls.AcquireAux();
    SeqOpenAuxIn(ws);
    stash_.Insert(key, value);
    if (opts_.stash_kind == StashKind::kOffchip) {
      for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
        ConcurrentSetFlag(ws, cand.idx[t]);
      }
    } else if (stash_.size() > opts_.onchip_stash_capacity) {
      forced_rehash_events_.FetchAdd(1);
    }
    return opts_.stash_enabled ? InsertResult::kStashed
                               : InsertResult::kFailed;
  }

 private:
  /// Charges one stash probe: an off-chip read for the paper's off-chip
  /// stash, an on-chip read for the classic CHS stash.
  void ChargeStashProbe() {
    ++stats_->stash_probes;
    if (opts_.stash_kind == StashKind::kOffchip) {
      ++stats_->offchip_reads;
    } else {
      ++stats_->onchip_reads;
    }
  }

  /// Charges one stash mutation (store/erase).
  void ChargeStashWrite() {
    if (opts_.stash_kind == StashKind::kOffchip) {
      ++stats_->offchip_writes;
    } else {
      ++stats_->onchip_writes;
    }
  }

  static constexpr size_t kNoBucket = static_cast<size_t>(-1);

  Candidates ComputeCandidates(const Key& key) const {
    Candidates c{};
    const std::array<uint64_t, kMaxHashes> b = family_.Buckets(key, &c.tag);
    for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
      c.idx[t] = static_cast<size_t>(t) * opts_.buckets_per_table + b[t];
    }
    return c;
  }

  // --- batching stage 1: hash + prefetch ---------------------------------

  /// Hashes `n` keys through the family's batch entry point and issues
  /// prefetches for every candidate's counter word and bucket line. Pure
  /// hint stage: no AccessStats are charged (hashing is on-chip work and
  /// prefetches are not algorithmic reads).
  void StageCandidates(const Key* keys, size_t n, Candidates* cand,
                       bool for_write) const {
    std::array<std::array<uint64_t, kMaxHashes>, kBatchTile> buckets;
    std::array<uint8_t, kBatchTile> tags;
    family_.BucketsBatch(keys, n, buckets.data(), tags.data());
    const uint32_t d = opts_.num_hashes;
    for (size_t i = 0; i < n; ++i) {
      for (uint32_t t = 0; t < d; ++t) {
        cand[i].idx[t] = static_cast<size_t>(t) * opts_.buckets_per_table +
                         buckets[i][t];
      }
      cand[i].tag = tags[i];
    }
    // Counter words first: stage 2 consults them before any bucket, so
    // they have the shortest deadline.
    for (size_t i = 0; i < n; ++i) {
      for (uint32_t t = 0; t < d; ++t) counters_.Prefetch(cand[i].idx[t]);
    }
    for (size_t i = 0; i < n; ++i) {
      for (uint32_t t = 0; t < d; ++t) {
        if (for_write) {
          __builtin_prefetch(&table_[cand[i].idx[t]], 1, 3);
        } else {
          __builtin_prefetch(&table_[cand[i].idx[t]], 0, 1);
        }
      }
    }
  }

  /// Scalar Find body over precomputed candidates (shared by Find and the
  /// batched path; candidate computation itself is uncharged either way).
  /// `sink` receives the lookup metrics: the live TableMetrics for scalar
  /// calls, a stack-local LookupTally for batches (flushed once per batch).
  template <typename MetricsSink>
  bool FindImpl(const Key& key, const Candidates& cand, Value* out,
                MetricsSink& sink) const {
    auto* self = const_cast<McCuckooTable*>(this);
    CandidateView view;
    const int64_t idx = self->FindInMain(key, cand, out, &view);
    RecordLookupMetrics(sink, view);
    if (idx >= 0) return true;
    if (self->ShouldProbeStash(view)) {
      self->ChargeStashProbe();
      const bool hit = stash_.Find(key, out);
      sink.RecordStashProbe(hit);
      return hit;
    }
    return false;
  }

  /// Flushes one operation's stack-local probe tallies into the sink
  /// (one fused outcome cell plus at most d partition increments).
  template <typename MetricsSink>
  void RecordLookupMetrics(MetricsSink& sink, const CandidateView& v) const {
    if constexpr (kMetricsEnabled) {
      sink.RecordLookupOutcome(v.probes_total, v.hit_value);
      for (uint32_t val = 1; val <= v.d; ++val) {
        sink.RecordPartitionProbes(val, v.probes_by_value[val]);
      }
    }
  }

  /// Scalar Insert body over precomputed candidates.
  InsertResult InsertWithCandidates(const Key& key, const Value& value,
                                    const Candidates& cand) {
    const uint64_t t0 = MetricsNowNs();
    const uint32_t placed = TryPlace(key, value, cand);
    if (placed > 0) {
      ++size_;
      SeqFlush();
      metrics_->RecordInsert(/*chain_len=*/0, MetricsNowNs() - t0);
      growth_.ObserveInsert(/*overflowed=*/false, 0, opts_.maxloop);
      MaybeGrow();
      return InsertResult::kInserted;
    }
    // All candidates hold sole copies: a real collision (§III.D).
    if (first_collision_items_ == 0) {
      first_collision_items_ = TotalItems() + 1;
    }
    const bool bfs = opts_.eviction_policy == EvictionPolicy::kBfs;
    uint32_t chain_len = 0;
    uint32_t bfs_nodes = 0;
    uint32_t bfs_budget = 0;
    const InsertResult r =
        bfs ? BfsInsert(key, value, cand, &chain_len, &bfs_nodes, &bfs_budget)
            : RandomWalkInsert(key, value, &chain_len);
    // The whole chain published at once: at no intermediate state was the
    // in-hand key absent from a stripe readers could have validated.
    SeqFlush();
    metrics_->RecordInsert(chain_len, MetricsNowNs() - t0);
    metrics_->RecordPolicyChain(
        static_cast<uint32_t>(opts_.eviction_policy), chain_len);
    if (bfs) metrics_->RecordBfsNodes(bfs_nodes);
    growth_.ObserveInsert(r != InsertResult::kInserted, chain_len,
                          opts_.maxloop, bfs_nodes, bfs_budget);
    MaybeGrow();
    return r;
  }

  /// Runs the growth policy against the post-insert occupancy and performs
  /// the rehash it asks for. Called with no stripes open (SeqFlush done):
  /// Rehash opens the aux stripe itself when the outer writer section does
  /// not already hold it, so optimistic readers stay correct whether the
  /// trigger fires inside a concurrent wrapper's Insert or a bare table.
  void MaybeGrow() {
    const GrowthDecision d = growth_.Decide(
        {TotalItems(), opts_.capacity(), stash_.size(),
         opts_.buckets_per_table});
    if (d.action == GrowthAction::kNone) return;
    if (d.action == GrowthAction::kSuppressed) {
      metrics_->SetGrowthSuppressed(true);
      return;
    }
    Status s;
    const uint64_t grow_t0 = MetricsNowNs();
    try {
      s = Rehash(d.new_buckets_per_table, growth_.NextSeed(opts_.seed));
    } catch (const std::bad_alloc&) {
      // Graceful degradation: the table is untouched (the rebuild never
      // reached its commit), inserts keep landing in the stash.
      s = Status::ResourceExhausted("auto-growth allocation failed");
    }
    if (s.ok()) {
      growth_.OnRehashSuccess(d.action);
      metrics_->RecordGrowthRehash(d.action == GrowthAction::kReseed);
      metrics_->SetGrowthSuppressed(false);
      spans_.Record(d.action == GrowthAction::kReseed ? SpanKind::kReseed
                                                      : SpanKind::kGrowth,
                    grow_t0, MetricsNowNs(), d.new_buckets_per_table);
    } else {
      growth_.OnRehashFailure();
      metrics_->RecordGrowthFailure();
      metrics_->SetGrowthSuppressed(true);
    }
  }

  // --- seqlock writer hooks ---------------------------------------------
  //
  // Every reader-visible mutation flows through the choke points below,
  // which mark the touched bucket's stripe as in-flight (odd). Stripes stay
  // odd across the *whole* operation — a kick chain's intermediate states
  // have the in-hand key in no bucket at all, so publishing per-store would
  // let an optimistic reader validate cleanly and miss a live key — and are
  // published together by SeqFlush() at each operation's consistent point.
  // All three are no-ops when no SeqlockArray is attached.

  void SeqOpen(size_t bucket_idx) {
    if (seq_ != nullptr) seq_open_.Open(*seq_, seq_->StripeOf(bucket_idx));
  }

  /// Opens the aux stripe covering state outside the bucket array (stash
  /// membership and size).
  void SeqOpenAux() {
    if (seq_ != nullptr) seq_open_.Open(*seq_, seq_->aux_stripe());
  }

  void SeqFlush() {
    if (seq_ != nullptr) seq_open_.CloseAll(*seq_);
  }

  // --- charged memory choke points --------------------------------------

  const Bucket& LoadBucket(size_t idx) {
    ++stats_->offchip_reads;
    return table_[idx];
  }

  void StoreBucket(size_t idx, const Key& key, const Value& value) {
    SeqOpen(idx);
    ++stats_->offchip_writes;
    Bucket& b = table_[idx];
    b.key = key;
    b.value = value;
    // stash_flag is sticky: preserved across occupant changes.
    // The fingerprint publishes inside the same seqlock window as the key
    // it describes; uncharged (software-layout state, see TagCounterArray).
    counters_.SetTag(idx, family_.TagOf(key));
  }

  void SetFlag(size_t idx) {
    SeqOpen(idx);
    ++stats_->offchip_writes;
    table_[idx].stash_flag = true;
  }

  // --- insertion ---------------------------------------------------------

  /// Applies insertion principles 1-3: fills empty candidates, then
  /// overwrites redundant copies in decreasing counter order while
  /// V >= placed + 2. Returns the number of copies placed (0 = collision).
  /// Updates counters of placed copies and of every displaced victim.
  uint32_t TryPlace(const Key& key, const Value& value,
                    const Candidates& cand) {
    const uint32_t d = opts_.num_hashes;
    std::array<uint64_t, kMaxHashes> cnt{};
    std::array<bool, kMaxHashes> taken{};
    for (uint32_t t = 0; t < d; ++t) {
      cnt[t] = counters_.Get(cand.idx[t]);
      // Tombstoned entries read as counter 0: "treated as zero for
      // insertion" (§III.B.3), so principle 1 recycles them transparently.
    }

    std::array<size_t, kMaxHashes> placed{};
    uint32_t n_placed = 0;

    // Principle 1: occupy all the empty candidate buckets.
    for (uint32_t t = 0; t < d; ++t) {
      if (cnt[t] == 0) {
        StoreBucket(cand.idx[t], key, value);
        placed[n_placed++] = cand.idx[t];
        taken[t] = true;
      }
    }

    // Principles 2+3: overwrite occupied candidates in decreasing counter
    // order while the victim keeps a lead of two copies; never touch value
    // 1. Counters are re-read each round: one insertion can displace two
    // copies of the *same* victim, whose counter drops in between.
    while (n_placed < d) {
      int best = -1;
      uint64_t best_v = 0;
      for (uint32_t t = 0; t < d; ++t) {
        if (taken[t]) continue;
        const uint64_t cur = counters_.Get(cand.idx[t]);
        if (cur > best_v) {
          best_v = cur;
          best = static_cast<int>(t);
        }
      }
      if (best < 0 || best_v < 2 || best_v < n_placed + 2) break;
      OverwriteRedundantCopy(cand.idx[best], best_v, key, value);
      placed[n_placed++] = cand.idx[best];
      taken[best] = true;
    }

    if (n_placed == 0) return 0;
    for (uint32_t i = 0; i < n_placed; ++i) {
      SeqOpen(placed[i]);
      counters_.Set(placed[i], n_placed);
    }
    redundant_writes_ += n_placed - 1;
    return n_placed;
  }

  /// Displaces the redundant copy at `victim_idx` (counter `v` >= 2) with
  /// (key, value), decrementing the victim item's other copies' counters.
  void OverwriteRedundantCopy(size_t victim_idx, uint64_t v, const Key& key,
                              const Value& value) {
    assert(v >= 2);
    const Key victim_key = LoadBucket(victim_idx).key;  // the Fig-10a read
    CopySet others = LocateOtherCopies(victim_key, victim_idx, v);
    for (uint32_t i = 0; i < others.count; ++i) {
      SeqOpen(others.idx[i]);
      counters_.Set(others.idx[i], v - 1);
    }
    StoreBucket(victim_idx, key, value);
  }

  /// Finds the v-1 buckets other than `known_idx` holding copies of `key`
  /// (whose counter value is `v`). All of them lie in the value-v partition
  /// of key's candidates; when the partition has exactly v members no reads
  /// are needed, otherwise members are read until the unread remainder must
  /// be the key's by pigeonhole.
  CopySet LocateOtherCopies(const Key& key, size_t known_idx, uint64_t v) {
    Candidates cand = ComputeCandidates(key);
    std::array<size_t, kMaxHashes> group{};
    uint32_t n_group = 0;
    for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
      const size_t idx = cand.idx[t];
      if (idx == known_idx) continue;
      if (counters_.Get(idx) == v) group[n_group++] = idx;
    }
    const uint32_t need = static_cast<uint32_t>(v) - 1;
    assert(n_group >= need);

    CopySet out{};
    uint32_t confirmed = 0;
    for (uint32_t i = 0; i < n_group && confirmed < need; ++i) {
      const uint32_t unread = n_group - i;
      if (unread == need - confirmed) {
        // Pigeonhole: every remaining partition member must be a copy.
        for (uint32_t j = i; j < n_group; ++j) {
          out.idx[out.count++] = group[j];
          ++confirmed;
        }
        break;
      }
      if (LoadBucket(group[i]).key == key) {
        out.idx[out.count++] = group[i];
        ++confirmed;
      }
    }
    assert(confirmed == need);
    return out;
  }

  /// As LocateOtherCopies but includes `known_idx`, for erase/update.
  CopySet LocateAllCopies(const Key& key, size_t known_idx, uint64_t v) {
    CopySet out = LocateOtherCopies(key, known_idx, v);
    out.idx[out.count++] = known_idx;
    return out;
  }

  /// Shared insertion-failure tail: parks the in-hand item in the stash
  /// (flags set for the off-chip kind, forced-rehash accounting for the
  /// on-chip kind). The caller guarantees the item's candidates all hold
  /// sole copies — the all-ones precondition the kDisabled stash screen
  /// relies on — and records its own trace event.
  InsertResult StashOverflow(const Key& key, const Value& value) {
    if (first_failure_items_ == 0) first_failure_items_ = TotalItems() + 1;
    ChargeStashWrite();
    SeqOpenAux();
    stash_.Insert(key, value);
    spans_.RecordInstant(SpanKind::kStashSpill, stash_.size());
    if (opts_.stash_kind == StashKind::kOffchip) {
      Candidates cand = ComputeCandidates(key);
      for (uint32_t t = 0; t < opts_.num_hashes; ++t) SetFlag(cand.idx[t]);
    } else if (stash_.size() > opts_.onchip_stash_capacity) {
      ++forced_rehash_events_;  // a real CHS deployment would rehash here
    }
    return opts_.stash_enabled ? InsertResult::kStashed : InsertResult::kFailed;
  }

  /// Counter-guided random walk (§III.D): at each step, if the in-hand item
  /// has any empty or redundant candidate the counters reveal it and the
  /// chain ends immediately; otherwise a sole-copy occupant (never the
  /// bucket just written) is evicted per the configured policy — uniform
  /// random, MinCounter's coldest bucket, or bubbling's deterministic
  /// level cycle. On maxloop overrun the in-hand item gets one final
  /// placement attempt and is otherwise stashed — candidates provably all
  /// sole copies — with its flags set (§III.E).
  InsertResult RandomWalkInsert(Key key, Value value,
                                uint32_t* chain_len_out) {
    size_t exclude = kNoBucket;
    int32_t from_level = -1;  // bubbling: level the in-hand item left
    uint32_t chain = 0;
    KickChainEvent ev{};  // populated only when metrics are compiled in
    for (uint32_t loop = 0; loop < opts_.maxloop; ++loop) {
      Candidates cand = ComputeCandidates(key);
      if (loop > 0) {
        const uint32_t placed = TryPlace(key, value, cand);
        if (placed > 0) {
          ++size_;  // net effect of the whole chain: the original key is in
          *chain_len_out = chain;
          if constexpr (kMetricsEnabled) {
            ev.chain_len = chain;
            ev.n_steps = static_cast<uint32_t>(
                std::min<size_t>(chain, kMaxTraceSteps));
            trace_.Record(ev);
          }
          return InsertResult::kInserted;
        }
      }
      // All candidates hold sole copies: evict per the configured policy,
      // avoiding the bucket we just wrote (no immediate ping-pong).
      const uint32_t t =
          opts_.eviction_policy == EvictionPolicy::kBubble
              ? PickBubbleVictim(cand.idx, opts_.num_hashes, exclude,
                                 from_level)
              : PickVictim(cand.idx, opts_.num_hashes, exclude, kick_history_,
                           rng_);
      const size_t idx = cand.idx[t];
      if constexpr (kMetricsEnabled) {
        if (chain < kMaxTraceSteps) {
          ev.step[chain] = KickStep{
              static_cast<uint64_t>(idx),
              static_cast<uint32_t>(counters_.PeekCounter(idx))};
        }
      }
      const Bucket& victim = LoadBucket(idx);
      Key vk = victim.key;
      Value vv = victim.value;
      StoreBucket(idx, key, value);
      // Counter stays 1: the bucket still holds a sole copy.
      ++stats_->kickouts;
      if (kick_history_.enabled()) kick_history_.Increment(idx);
      exclude = idx;
      from_level = static_cast<int32_t>(t);
      key = std::move(vk);
      value = std::move(vv);
      ++chain;
    }
    // The loop's last iteration evicted one more victim without giving the
    // newly carried item a placement attempt of its own. Complete that step
    // before stashing: otherwise an item with an empty or redundant
    // candidate lands in the stash, and the kDisabled stash screen — which
    // relies on every stashed key having seen all-ones counters — would
    // veto that key's own lookups.
    {
      const Candidates cand = ComputeCandidates(key);
      const uint32_t placed = TryPlace(key, value, cand);
      if (placed > 0) {
        ++size_;
        *chain_len_out = chain;
        if constexpr (kMetricsEnabled) {
          ev.chain_len = chain;
          ev.n_steps =
              static_cast<uint32_t>(std::min<size_t>(chain, kMaxTraceSteps));
          trace_.Record(ev);
        }
        return InsertResult::kInserted;
      }
    }
    // Insertion failure: park the in-hand item in the stash.
    *chain_len_out = chain;
    if constexpr (kMetricsEnabled) {
      ev.chain_len = chain;
      ev.n_steps =
          static_cast<uint32_t>(std::min<size_t>(chain, kMaxTraceSteps));
      ev.stashed = true;
      trace_.Record(ev);
      trace_.NoteStashed();
    }
    return StashOverflow(key, value);
  }

  /// Counter-aware breadth-first search for the shortest eviction chain
  /// (§III.D crossed with [3]). Entered only when TryPlace placed nothing,
  /// which proves every candidate of the in-hand key holds a sole copy —
  /// so all roots are valid interior nodes. The search itself reads one
  /// off-chip bucket per expanded node (the occupant key, to compute its
  /// alternates) and otherwise steers entirely by the on-chip counters:
  ///
  ///   counter == 0  -> free terminal (empty or tombstoned bucket);
  ///   counter >= 2  -> redundant terminal: "evicting" the occupant is a
  ///                    pure counter decrement of its other copies — the
  ///                    multi-copy advantage that keeps chains short where
  ///                    the single-copy BFS must walk to a true hole;
  ///   counter == 1  -> interior node, children = occupant's alternates.
  ///
  /// On success the chain shifts backward terminal-first under open seqlock
  /// stripes (published by the caller's single SeqFlush). On failure the
  /// table is untouched — BfsFindPath mutates nothing — so the stash tail
  /// inherits the all-ones invariant directly from the TryPlace screen.
  InsertResult BfsInsert(const Key& key, const Value& value,
                         const Candidates& cand, uint32_t* chain_len_out,
                         uint32_t* nodes_out, uint32_t* budget_out) {
    const uint32_t d = opts_.num_hashes;
    std::array<uint64_t, kMaxHashes> roots{};
    for (uint32_t t = 0; t < d; ++t) roots[t] = cand.idx[t];
    *budget_out = bfs_throttle_.Budget(BfsNodeBudget(opts_.maxloop));
    const BfsPathResult path = BfsFindPath(
        roots.data(), d, *budget_out,
        [&](uint64_t id, auto&& emit, auto&& terminal) {
          const size_t bucket = static_cast<size_t>(id);
          const Key okey = LoadBucket(bucket).key;  // the one off-chip read
          const Candidates oc = ComputeCandidates(okey);
          for (uint32_t t = 0; t < d; ++t) {
            const size_t alt = oc.idx[t];
            if (alt == bucket) continue;
            const uint64_t c = counters_.Get(alt);
            if (c != 1) {
              terminal(alt);  // 0 = free, >= 2 = redundant copy
              return;
            }
            // The child will be expanded (one occupant read) a few
            // iterations from now: issuing the fetch here overlaps the
            // DRAM latency of the whole frontier instead of paying one
            // serial miss per expanded node.
            __builtin_prefetch(&table_[alt], 0, 1);
            emit(alt);
          }
        });
    *nodes_out = path.nodes_expanded;
    bfs_throttle_.Observe(path.found);
    if (!path.found) {
      *chain_len_out = 0;
      if constexpr (kMetricsEnabled) {
        KickChainEvent ev{};
        ev.stashed = true;
        trace_.Record(ev);
        trace_.NoteStashed();
      }
      spans_.RecordInstant(SpanKind::kBfsDeadEnd, path.nodes_expanded);
      return StashOverflow(key, value);
    }
    // Apply the chain backward: the last interior occupant moves into the
    // terminal, each predecessor into its successor, and the new key lands
    // in the root. Every interior occupant is a sole copy (counter 1), so
    // moves are plain bucket stores; only the terminal changes counters.
    KickChainEvent ev{};
    size_t dst = static_cast<size_t>(path.terminal);
    const uint64_t term_v = counters_.PeekCounter(dst);
    for (size_t i = path.node.size(); i-- > 0;) {
      const size_t src = static_cast<size_t>(path.node[i]);
      const Bucket moved = table_[src];  // read during the search
      if (dst == static_cast<size_t>(path.terminal)) {
        if (term_v >= 2) {
          // Redundant terminal: displace one copy of the occupant, which
          // decrements its other copies' counters (zero relocations).
          OverwriteRedundantCopy(dst, term_v, moved.key, moved.value);
        } else {
          StoreBucket(dst, moved.key, moved.value);
        }
        SeqOpen(dst);
        counters_.Set(dst, 1);  // the moved item is a sole copy
      } else {
        StoreBucket(dst, moved.key, moved.value);
        // Counter stays 1: dst already held a sole copy.
      }
      ++stats_->kickouts;
      if (kick_history_.enabled()) kick_history_.Increment(src);
      if constexpr (kMetricsEnabled) {
        if (i < kMaxTraceSteps) {
          ev.step[i] = KickStep{
              static_cast<uint64_t>(src),
              static_cast<uint32_t>(counters_.PeekCounter(src))};
        }
      }
      dst = src;
    }
    StoreBucket(static_cast<size_t>(path.node.front()), key, value);
    ++size_;
    const uint32_t chain = static_cast<uint32_t>(path.node.size());
    *chain_len_out = chain;
    if constexpr (kMetricsEnabled) {
      ev.chain_len = chain;
      ev.n_steps =
          static_cast<uint32_t>(std::min<size_t>(chain, kMaxTraceSteps));
      trace_.Record(ev);
    }
    return InsertResult::kInserted;
  }

  // --- lookup ------------------------------------------------------------

  static uint32_t FindSlot(const CandidateView& view, int64_t idx) {
    for (uint32_t t = 0; t < view.d; ++t) {
      if (view.idx[t] == static_cast<size_t>(idx)) return t;
    }
    assert(false && "index not a candidate");
    return 0;
  }

  /// Main-table probe implementing the lookup principles, over precomputed
  /// candidates. Returns the global index where the key was found (its
  /// value copied to `out`), or -1 on a miss. Fills `*view` for the
  /// stash-screening decision.
  int64_t FindInMain(const Key& key, const Candidates& cand, Value* out,
                     CandidateView* view) {
    const uint32_t d = opts_.num_hashes;
    // One bulk charge equal to what the per-candidate model read: d counter
    // reads, doubled by the tombstone probe in kTombstone mode. The byte
    // peeks below are the same logical reads through the packed layout.
    counters_.ChargeReads(
        static_cast<uint64_t>(d) *
        (opts_.deletion_mode == DeletionMode::kTombstone ? 2 : 1));
    CandidateView& v = *view;
    v.d = d;
    bool any_zero = false;
    for (uint32_t t = 0; t < d; ++t) {
      v.idx[t] = cand.idx[t];
      v.counter[t] = counters_.PeekCounter(cand.idx[t]);
      v.tombstone[t] = (opts_.deletion_mode == DeletionMode::kTombstone) &&
                       counters_.PeekTombstone(cand.idx[t]);
      v.bucket_read[t] = false;
      v.flag_value[t] = false;
      if (v.counter[t] == 0 && !v.tombstone[t]) any_zero = true;
    }

    // Principle 1 (Bloom rule): sound whenever counters cannot silently
    // return to true zero, i.e. in kDisabled and kTombstone modes.
    if (opts_.lookup_pruning_enabled && any_zero &&
        opts_.deletion_mode != DeletionMode::kResetCounters) {
      return -1;
    }

    const uint8_t tag_nibble = cand.tag & 0x0Fu;
    auto probe = [&](uint32_t t, uint64_t value) -> bool {
      ++v.probes_total;
      ++v.probes_by_value[value <= kMaxHashes ? value : kMaxHashes];
      if (counters_.PeekTag(cand.idx[t]) != tag_nibble && stash_.empty()) {
        // The fingerprint proves the occupant is a different key, and with
        // the stash empty its flag can never matter — so skip the physical
        // DRAM touch while charging the read the paper's model performs
        // (its hardware has no tags; accounting stays bit-identical).
        ++stats_->offchip_reads;
        v.bucket_read[t] = true;
        v.flag_value[t] = false;
        return false;
      }
      const Bucket& b = LoadBucket(cand.idx[t]);
      v.bucket_read[t] = true;
      v.flag_value[t] = b.stash_flag;
      if (b.key == key) {
        if (out != nullptr) *out = b.value;
        v.hit_value = static_cast<int32_t>(value);
        return true;
      }
      return false;
    };

    if (!opts_.lookup_pruning_enabled) {
      for (uint32_t t = 0; t < d; ++t) {
        if (v.counter[t] == 0) continue;  // empty / tombstoned: no live copy
        if (probe(t, v.counter[t])) return static_cast<int64_t>(cand.idx[t]);
      }
      return -1;
    }

    // Principles 2+3: per-value partitions; skip impossible ones; probe at
    // most S - V + 1 members of the rest.
    for (uint64_t value = d; value >= 1; --value) {
      uint32_t members[kMaxHashes];
      uint32_t s = 0;
      for (uint32_t t = 0; t < d; ++t) {
        if (!v.tombstone[t] && v.counter[t] == value) members[s++] = t;
      }
      if (s < value) continue;  // impossible partition
      const uint32_t probes = s - static_cast<uint32_t>(value) + 1;
      for (uint32_t i = 0; i < probes; ++i) {
        if (probe(members[i], value)) {
          return static_cast<int64_t>(cand.idx[members[i]]);
        }
      }
    }
    return -1;
  }

  /// Decides whether a main-table miss warrants a stash probe (§III.E/F).
  bool ShouldProbeStash(const CandidateView& v) const {
    if (stash_.empty()) return false;  // stash size is an on-chip register
    if (opts_.stash_kind == StashKind::kOnchipChs) return true;  // free probe
    if (!opts_.stash_screen_enabled) return true;

    bool any_zero = false, any_gt1 = false;
    for (uint32_t t = 0; t < v.d; ++t) {
      if (v.counter[t] == 0 && !v.tombstone[t]) any_zero = true;
      if (v.counter[t] > 1) any_gt1 = true;
    }
    if (opts_.deletion_mode == DeletionMode::kDisabled) {
      // A stashed key saw all-ones counters, and without deletions a
      // counter can never fall back to 0 nor a sole copy gain copies.
      if (any_zero || any_gt1) return false;
      for (uint32_t t = 0; t < v.d; ++t) {
        if (v.bucket_read[t] && !v.flag_value[t]) return false;
      }
      return true;
    }
    if (opts_.deletion_mode == DeletionMode::kTombstone && any_zero) {
      // True zeros still prove "never inserted, never stashed".
      return false;
    }
    // Deletion-enabled: only the flags of buckets actually read are
    // trustworthy (§III.F); any 0 among them vetoes the probe.
    for (uint32_t t = 0; t < v.d; ++t) {
      if (v.bucket_read[t] && !v.flag_value[t]) return false;
    }
    return true;
  }

  /// Commits a Rehash-rebuilt table while optimistic readers may be
  /// probing this one (caller holds the aux stripe odd). Reader-visible
  /// storage — buckets and counters — is exchanged pointer-wise, so a
  /// racing reader sees the old or the new buffer but never a transient
  /// moved-from state, and the replaced epoch is parked in retired_ so
  /// lagging readers keep dereferencing live memory. Everything else is
  /// either invisible to the optimistic probe or moves wholesale. The
  /// stats_/metrics_ heap objects stay identity-stable — a lagging reader
  /// flushes its tally through the pre-commit pointer after validation — so
  /// the rebuild's deltas are merged into them rather than replacing them.
  /// NOTE: keep in sync with the member list — a member missed here keeps
  /// its pre-rehash value.
  void CommitRebuildLockFree(McCuckooTable&& rebuilt) {
    table_.swap(rebuilt.table_);
    counters_.SwapStorage(rebuilt.counters_);
    retired_.push_back(RetiredStorage{std::move(rebuilt.table_),
                                      std::move(rebuilt.counters_)});
    opts_ = rebuilt.opts_;
    family_ = std::move(rebuilt.family_);
    *stats_ += *rebuilt.stats_;
    metrics_->MergeFrom(*rebuilt.metrics_);
    latency_->MergeFrom(*rebuilt.latency_);
    trace_ = std::move(rebuilt.trace_);
    // spans_ deliberately keeps this table's ring: it is a lifetime
    // timeline (the rehash span lands in it right after this commit);
    // the scratch rebuild's ring holds nothing worth keeping.
    kick_history_.AdoptStorage(std::move(rebuilt.kick_history_));
    stash_ = std::move(rebuilt.stash_);
    rng_ = std::move(rebuilt.rng_);
    // The rebuild just freed space, so any dead-end streak is stale.
    bfs_throttle_ = {};
    size_ = rebuilt.size_;
    first_collision_items_ = rebuilt.first_collision_items_;
    first_failure_items_ = rebuilt.first_failure_items_;
    redundant_writes_ = rebuilt.redundant_writes_;
    stale_stash_flag_keys_ = rebuilt.stale_stash_flag_keys_;
    forced_rehash_events_ = rebuilt.forced_rehash_events_;
    ++rehash_epoch_;
    // seq_, seq_open_, locks_, retired_ and growth_ deliberately keep this
    // table's values (the policy's backoff/reseed state spans rebuilds, and
    // the seqlock/lock-stripe attachments belong to the wrapper, not the
    // scratch rebuild).
  }

  TableOptions opts_;
  Family family_;
  std::vector<Bucket> table_;
  // Heap-allocated so the pointer handed to CounterArray /
  // KickHistory stays valid when the table is moved (Rehash,
  // snapshot loading, factory returns).
  mutable std::unique_ptr<AccessStats> stats_ =
      std::make_unique<AccessStats>();
  // Same pattern for the metrics: atomics are immovable, the unique_ptr
  // keeps the table movable and lets const read paths record.
  mutable std::unique_ptr<TableMetrics> metrics_ =
      std::make_unique<TableMetrics>();
  // Sampled op-latency recorder: heap-held for the same identity-stability
  // reason as metrics_ (const read paths record through it, and lagging
  // optimistic readers must see a live object across Rehash commits).
  // The sample period is applied from opts_ in the constructor body.
  mutable std::unique_ptr<LatencyRecorder> latency_ =
      std::make_unique<LatencyRecorder>();
  TraceRecorder trace_;
  // Growth/rehash/dead-end/spill timeline (writer-exclusion threading
  // model, like trace_).
  SpanRecorder spans_;
  TagCounterArray counters_;
  KickHistory kick_history_;
  Stash<Key, Value> stash_;
  Xoshiro256 rng_;
  BfsThrottle bfs_throttle_;
  // Optimistic-read support: non-owning version array attached by the
  // concurrent wrapper (null in single-threaded use) and the set of
  // stripes the in-flight mutation holds odd until its SeqFlush().
  SeqlockArray* seq_ = nullptr;
  SeqlockWriterSet seq_open_;
  // Multi-writer support: non-owning striped writer-lock array attached by
  // the multi-writer wrapper (null in single-writer use). Congruent with
  // seq_ by construction (both size via SeqlockArray::StripesFor), so a
  // held lock stripe owns exactly one seqlock stripe's writer rights.
  LockStripeArray* locks_ = nullptr;
  // Storage epochs retired by Rehash while a seqlock was attached. Never
  // accessed again (the CounterArray's stats pointer inside is dangling by
  // design) — held only so lagging optimistic readers dereference live
  // memory; freed when the table is destroyed.
  struct RetiredStorage {
    std::vector<Bucket> table;
    TagCounterArray counters;
  };
  std::vector<RetiredStorage> retired_;

  // Lifetime counters. MovableAtomic so the concurrent paths can update
  // them with real RMWs while every single-writer use site keeps its plain
  // ++/+=/= spelling (non-RMW loads and stores, byte-identical codegen on
  // the hot single-writer paths).
  MovableAtomic<size_t> size_ = 0;
  MovableAtomic<uint64_t> first_collision_items_ = 0;
  MovableAtomic<uint64_t> first_failure_items_ = 0;
  MovableAtomic<uint64_t> redundant_writes_ = 0;
  MovableAtomic<uint64_t> stale_stash_flag_keys_ = 0;
  MovableAtomic<uint64_t> forced_rehash_events_ = 0;
  // Auto-growth engine: the policy state machine and the commit counter
  // the batched insert path uses to detect mid-batch geometry changes.
  // Both survive Rehash commits (see CommitRebuildLockFree).
  GrowthPolicy growth_;
  MovableAtomic<uint64_t> rehash_epoch_ = 0;
};

}  // namespace mccuckoo

#endif  // MCCUCKOO_CORE_MCCUCKOO_TABLE_H_
