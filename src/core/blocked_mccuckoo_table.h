// Blocked multi-copy Cuckoo table (B-McCuckoo, paper §III.G).
//
// The multi-copy idea applied to the blocked layout: d sub-tables whose
// buckets hold l slots each (d = 3, l = 3 in the paper), one on-chip
// counter per *slot*, and one stash flag per *bucket*. Insertion follows
// Algorithm 1 (Fig 6): place one copy into an empty slot of every candidate
// bucket; if no copy found a home, overwrite counter-3 slots of the buckets
// with the highest counter sum while the inserted item trails the victim by
// two copies, then counter-2 slots, and only when all d*l candidate slot
// counters are 1 fall back to the random walk / stash. Lookup follows
// Algorithm 2: a bucket whose counters sum to zero is skipped entirely
// (bucket-level Bloom rule); otherwise the whole bucket is fetched in one
// access and scanned. Deletion follows Algorithm 3 and performs zero
// off-chip writes.
//
// Slot hints: each record stores, for every other sub-table, which slot its
// copy there occupies ((d-1) * log2(l) bits per slot, §III.G). The paper
// admits the hints "cannot be fully tracked" once third parties overwrite
// hinted slots; we therefore use them only to order the disambiguating
// bucket reads (a stale hint costs nothing — the read it orders returns the
// whole bucket and reveals the truth), never as an unverified source for
// counter updates. All placement decisions are made from the on-chip
// counters *before* any off-chip write, so every copy is written exactly
// once, hints included.

#ifndef MCCUCKOO_CORE_BLOCKED_MCCUCKOO_TABLE_H_
#define MCCUCKOO_CORE_BLOCKED_MCCUCKOO_TABLE_H_

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "src/common/bits.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/bucket_header.h"
#include "src/core/config.h"
#include "src/core/counter_array.h"
#include "src/core/eviction.h"
#include "src/core/growth.h"
#include "src/core/seqlock.h"
#include "src/core/stash.h"
#include "src/hash/hash_family.h"
#include "src/mem/access_stats.h"
#include "src/obs/heatmap.h"
#include "src/obs/latency_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/span_recorder.h"
#include "src/obs/trace_recorder.h"

namespace mccuckoo {

/// Blocked multi-copy cuckoo hash table (d hashes, l slots per bucket).
template <typename Key, typename Value, typename Hasher = BobHasher,
          typename Family = HashFamily<Key, Hasher>>
  requires SeedableHasher<Hasher, Key>
class BlockedMcCuckooTable {
 public:
  /// Exposed template parameters (used by wrappers/adapters).
  using KeyType = Key;
  using ValueType = Value;
  using HasherType = Hasher;

  /// Sentinel for "no copy in that sub-table" in a record's hint array.
  static constexpr uint8_t kNoHint = 0xFF;

  /// One record slot. `hint[t]` is the slot index of this item's copy in
  /// sub-table t when that copy existed at write time (kNoHint otherwise);
  /// the entry for the record's own sub-table is unused.
  struct Slot {
    Key key{};
    Value value{};
    std::array<uint8_t, kMaxHashes> hint{kNoHint, kNoHint, kNoHint, kNoHint};
  };

 private:
  // Nested aggregates are defined before the operations: the batched and
  // candidate-reusing member signatures below mention them.

  /// Global candidate bucket indices (bucket index space, not slot space)
  /// plus the key's fingerprint, derived in the same hashing pass.
  struct Candidates {
    std::array<size_t, kMaxHashes> bucket;
    uint8_t tag = 0;
  };

  /// A (sub-table, bucket, slot) position, held as (bucket index, slot).
  struct Position {
    size_t bucket = 0;
    uint32_t slot = 0;
    bool operator==(const Position& o) const {
      return bucket == o.bucket && slot == o.slot;
    }
  };

  /// Counters and flags observed during an operation, for stash screening.
  struct CandidateView {
    std::array<size_t, kMaxHashes> bucket{};
    std::array<uint64_t, kMaxHashes> sum{};        // counter sum per bucket
    std::array<bool, kMaxHashes> bloom_nonzero{};  // any counter or tombstone
    std::array<bool, kMaxHashes> all_ones{};       // every slot counter == 1
    std::array<bool, kMaxHashes> bucket_read{};
    std::array<bool, kMaxHashes> flag_value{};
    uint32_t d = 0;
    // Probe accounting for the metrics layer. Blocked lookups fetch whole
    // buckets, so "probes" counts bucket reads; hit_value is the found
    // slot's counter (its partition).
    uint32_t probes_total = 0;
    int32_t hit_value = -1;
  };

  struct CopySet {
    std::array<Position, kMaxHashes> pos;
    uint32_t count = 0;
  };

 public:
  /// The configuration conditions Create() reports as Status. The
  /// constructor enforces the same conditions with an unconditional abort,
  /// so Debug and Release builds agree on what direct construction with
  /// unsupported options does (it used to be a Debug-only assert).
  static Status CheckOptions(const TableOptions& options) {
    if (Status s = options.Validate(); !s.ok()) return s;
    if (options.slots_per_bucket < 2) {
      return Status::InvalidArgument(
          "BlockedMcCuckooTable needs slots_per_bucket >= 2; "
          "use McCuckooTable");
    }
    return Status::OK();
  }

  /// Constructs a table; `options` must satisfy CheckOptions() (aborts
  /// otherwise — use Create() for untrusted configuration).
  explicit BlockedMcCuckooTable(const TableOptions& options)
      : opts_(options),
        family_(options.num_hashes, options.buckets_per_table, options.seed),
        slots_(static_cast<size_t>(options.num_hashes) *
               options.buckets_per_table * options.slots_per_bucket),
        flags_(static_cast<size_t>(options.num_hashes) *
               options.buckets_per_table),
        counters_(slots_.size(), options.slots_per_bucket, options.num_hashes,
                  stats_.get()),
        probe_simd_(ResolveProbeKind(options.probe) == ProbeKind::kSimd),
        rng_(SplitMix64(options.seed ^ 0xB10CB10CB10CB10Cull)),
        growth_(options.growth) {
    if (Status s = CheckOptions(options); !s.ok()) {
      std::fprintf(stderr, "BlockedMcCuckooTable: %s\n", s.message().c_str());
      std::abort();
    }
    if (options.eviction_policy == EvictionPolicy::kMinCounter) {
      kick_history_ =
          KickHistory(flags_.size(), options.kick_counter_bits, stats_.get());
    }
    latency_->set_sample_period(options.latency_sample_period);
  }

  /// Validating factory for untrusted configuration.
  static Result<BlockedMcCuckooTable> Create(const TableOptions& options) {
    if (Status s = CheckOptions(options); !s.ok()) return s;
    return BlockedMcCuckooTable(options);
  }

  // --- Core operations ---------------------------------------------------

  /// Inserts a key assumed not to be present (see McCuckooTable::Insert).
  InsertResult Insert(const Key& key, const Value& value) {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kInsert);
    return InsertWithCandidates(key, value, ComputeCandidates(key));
  }

  /// Inserts or, if the key exists (main table or stash), updates every copy.
  InsertResult InsertOrAssign(const Key& key, const Value& value) {
    CandidateView view;
    Position pos;
    if (FindInMain(key, ComputeCandidates(key), nullptr, &view, &pos)) {
      CopySet copies = LocateAllCopies(key, pos, CounterAt(pos));
      for (uint32_t i = 0; i < copies.count; ++i) {
        WriteSlotValue(copies.pos[i], key, value);
      }
      SeqFlush();
      return InsertResult::kUpdated;
    }
    if (ShouldProbeStash(view)) {
      ChargeStashProbe();
      const bool in_stash = stash_.Find(key, nullptr);
      metrics_->RecordStashProbe(in_stash);
      if (in_stash) {
        ChargeStashWrite();
        SeqOpenAux();
        stash_.Insert(key, value);
        SeqFlush();
        return InsertResult::kUpdated;
      }
    }
    return Insert(key, value);
  }

  /// Looks `key` up (Algorithm 2, Fig 7).
  bool Find(const Key& key, Value* out = nullptr) const {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kFind);
    return FindImpl(key, ComputeCandidates(key), out, *metrics_);
  }

  bool Contains(const Key& key) const { return Find(key, nullptr); }

  // --- Batched operations (software-pipelined) ---------------------------
  //
  // Same two-stage pipeline as McCuckooTable: stage 1 hashes a tile of
  // keys and prefetches every candidate bucket's slot lines and counter
  // words; stage 2 replays the unchanged scalar per-key logic. Algorithm
  // 2's bucket-sum skipping and the AccessStats accounting are bit-
  // identical to a scalar loop.

  /// Internal pipeline depth. 16 keys, not 64: a blocked bucket spans
  /// l * sizeof(Slot) bytes (several lines), so large tiles overflow L1
  /// before stage 2 replays the first keys — see the sizing comment on
  /// McCuckooTable::kBatchTile.
  static constexpr size_t kBatchTile = 16;

  /// Batched lookup; equivalent to calling Find per key, in order. Returns
  /// the number of keys found.
  size_t FindBatch(std::span<const Key> keys, Value* out, bool* found) const {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kFindBatch);
    size_t hits = 0;
    std::array<Candidates, kBatchTile> cand;
    // Lookup metrics accumulate on the stack and publish once per batch
    // (see McCuckooTable::FindBatch).
    LookupTally tally;
    for (size_t base = 0; base < keys.size(); base += kBatchTile) {
      const size_t n = std::min(kBatchTile, keys.size() - base);
      StageCandidates(&keys[base], n, cand.data(), /*for_write=*/false);
      for (size_t i = 0; i < n; ++i) {
        const bool hit =
            FindImpl(keys[base + i], cand[i],
                     out != nullptr ? &out[base + i] : nullptr, tally);
        if (found != nullptr) found[base + i] = hit;
        hits += hit ? 1 : 0;
      }
    }
    tally.FlushTo(*metrics_);
    return hits;
  }

  /// Batched membership test.
  size_t ContainsBatch(std::span<const Key> keys, bool* found) const {
    return FindBatch(keys, nullptr, found);
  }

  /// Batched mutation-free lookup (sharded/concurrent reader path).
  size_t FindBatchNoStats(std::span<const Key> keys, Value* out,
                          bool* found) const {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kFindBatch);
    size_t hits = 0;
    std::array<Candidates, kBatchTile> cand;
    LookupTally tally;
    for (size_t base = 0; base < keys.size(); base += kBatchTile) {
      const size_t n = std::min(kBatchTile, keys.size() - base);
      StageCandidates(&keys[base], n, cand.data(), /*for_write=*/false);
      for (size_t i = 0; i < n; ++i) {
        const bool hit =
            FindNoStatsImpl(keys[base + i], cand[i],
                            out != nullptr ? &out[base + i] : nullptr, tally);
        if (found != nullptr) found[base + i] = hit;
        hits += hit ? 1 : 0;
      }
    }
    tally.FlushTo(*metrics_);
    return hits;
  }

  /// Batched insertion; equivalent to calling Insert per key, in order.
  void InsertBatch(std::span<const Key> keys, std::span<const Value> values,
                   InsertResult* results = nullptr) {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kInsertBatch);
    assert(keys.size() == values.size());
    std::array<Candidates, kBatchTile> cand;
    for (size_t base = 0; base < keys.size(); base += kBatchTile) {
      const size_t n = std::min(kBatchTile, keys.size() - base);
      StageCandidates(&keys[base], n, cand.data(), /*for_write=*/true);
      for (size_t i = 0; i < n; ++i) {
        const uint64_t epoch = rehash_epoch_;
        const InsertResult r =
            InsertWithCandidates(keys[base + i], values[base + i], cand[i]);
        if (results != nullptr) results[base + i] = r;
        // An auto-growth rehash inside the insert replaced the geometry
        // and hash seeds; the remaining staged candidates were computed
        // against the old ones and must be re-derived.
        if (rehash_epoch_ != epoch && i + 1 < n) {
          StageCandidates(&keys[base + i + 1], n - i - 1, &cand[i + 1],
                          /*for_write=*/true);
        }
      }
    }
  }

  /// Statistics-free const lookup (see McCuckooTable::FindNoStats): the
  /// ConcurrentMcCuckoo reader path. Performs no mutation.
  bool FindNoStats(const Key& key, Value* out = nullptr) const {
    return FindNoStatsImpl(key, ComputeCandidates(key), out, *metrics_);
  }

  // --- Optimistic (seqlock-validated) read path --------------------------
  // Same protocol as McCuckooTable; stripes cover whole buckets here.

  /// Attaches (or, with null, detaches) the wrapper-owned version array.
  void AttachSeqlock(SeqlockArray* seq) { seq_ = seq; }

  /// Sizing hint for the version array: one potential stripe per bucket.
  size_t seqlock_domain() const { return flags_.size(); }

  /// Lock-free lookup attempt (see McCuckooTable::TryFindOptimistic).
  OptimisticResult TryFindOptimistic(const Key& key,
                                     Value* out = nullptr) const {
    static_assert(
        std::is_trivially_copyable_v<Key> && std::is_trivially_copyable_v<Value>,
        "optimistic reads require trivially copyable Key and Value");
    // One sample candidate per attempt (see McCuckooTable).
    ScopedLatencySample lat(latency_.get(), LatencyOp::kFind);
    if (seq_ == nullptr) return OptimisticResult::kContended;
    size_t stripes[kMaxHashes + 1];
    uint32_t versions[kMaxHashes + 1];
    size_t n = 0;
    stripes[n] = seq_->aux_stripe();
    versions[n] = seq_->ReadBegin(stripes[n]);
    if (SeqlockArray::IsWriting(versions[n])) {
      return OptimisticResult::kContended;
    }
    ++n;
    // Candidates under the recorded aux version, bounds-checked before any
    // probe (see McCuckooTable::TryFindOptimistic): Rehash replaces the
    // geometry and hash seeds wholesale, and a torn-epoch bucket index
    // must not escape into the slot probe.
    uint32_t d;
    Candidates cand;
    {
      SeqlockReadCritical crit;
      d = opts_.num_hashes;
      cand = ComputeCandidates(key);
      for (uint32_t t = 0; t < d; ++t) {
        if (cand.bucket[t] >= flags_.size()) {
          return OptimisticResult::kContended;
        }
      }
    }
    for (uint32_t t = 0; t < d; ++t) {
      const size_t s = seq_->StripeOf(cand.bucket[t]);
      bool dup = false;
      for (size_t j = 1; j < n; ++j) {
        if (stripes[j] == s) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      stripes[n] = s;
      versions[n] = seq_->ReadBegin(s);
      if (SeqlockArray::IsWriting(versions[n])) {
        return OptimisticResult::kContended;
      }
      ++n;
    }
    Value tmp{};
    LookupTally tally;
    MainOutcome mo;
    {
      SeqlockReadCritical crit;
      mo = FindNoStatsMain(key, cand, &tmp, tally);
    }
    if (!seq_->Validate(stripes, versions, n)) {
      return OptimisticResult::kContended;
    }
    if (mo == MainOutcome::kCheckStash) return OptimisticResult::kContended;
    tally.FlushTo(*metrics_);
    if (mo == MainOutcome::kHit) {
      if (out != nullptr) *out = tmp;
      return OptimisticResult::kHit;
    }
    return OptimisticResult::kMiss;
  }

  /// All-or-nothing optimistic batch lookup over one tile (see
  /// McCuckooTable::TryFindBatchOptimistic). Returns the hit count or -1.
  int64_t TryFindBatchOptimistic(std::span<const Key> keys, Value* out,
                                 bool* found) const {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kFindBatch);
    static_assert(
        std::is_trivially_copyable_v<Key> && std::is_trivially_copyable_v<Value>,
        "optimistic reads require trivially copyable Key and Value");
    assert(keys.size() <= kBatchTile);
    if (seq_ == nullptr) return -1;
    if (keys.empty()) return 0;
    const size_t n_keys = keys.size();
    std::array<size_t, kBatchTile * kMaxHashes + 1> stripes;
    std::array<uint32_t, kBatchTile * kMaxHashes + 1> versions;
    size_t n = 0;
    stripes[n] = seq_->aux_stripe();
    versions[n] = seq_->ReadBegin(stripes[n]);
    if (SeqlockArray::IsWriting(versions[n])) return -1;
    ++n;
    // Candidates under the recorded aux version, bounds-checked before any
    // probe (see McCuckooTable::TryFindOptimistic).
    uint32_t d;
    std::array<Candidates, kBatchTile> cand;
    {
      SeqlockReadCritical crit;
      d = opts_.num_hashes;
      StageCandidates(keys.data(), n_keys, cand.data(), /*for_write=*/false);
      for (size_t i = 0; i < n_keys; ++i) {
        for (uint32_t t = 0; t < d; ++t) {
          if (cand[i].bucket[t] >= flags_.size()) return -1;
        }
      }
    }
    for (size_t i = 0; i < n_keys; ++i) {
      for (uint32_t t = 0; t < d; ++t) {
        const size_t s = seq_->StripeOf(cand[i].bucket[t]);
        stripes[n] = s;
        versions[n] = seq_->ReadBegin(s);
        if (SeqlockArray::IsWriting(versions[n])) return -1;
        ++n;
      }
    }
    std::array<Value, kBatchTile> tmpv{};
    std::array<bool, kBatchTile> tmpf{};
    LookupTally tally;
    size_t hits = 0;
    {
      SeqlockReadCritical crit;
      for (size_t i = 0; i < n_keys; ++i) {
        const MainOutcome mo =
            FindNoStatsMain(keys[i], cand[i], &tmpv[i], tally);
        if (mo == MainOutcome::kCheckStash) return -1;
        tmpf[i] = (mo == MainOutcome::kHit);
        hits += tmpf[i] ? 1 : 0;
      }
    }
    if (!seq_->Validate(stripes.data(), versions.data(), n)) return -1;
    tally.FlushTo(*metrics_);
    for (size_t i = 0; i < n_keys; ++i) {
      if (found != nullptr) found[i] = tmpf[i];
      if (out != nullptr && tmpf[i]) out[i] = tmpv[i];
    }
    return static_cast<int64_t>(hits);
  }

 private:
  /// See McCuckooTable::MainOutcome.
  enum class MainOutcome : uint8_t { kHit, kMiss, kCheckStash };

  /// Main-table part of FindNoStats over precomputed candidates —
  /// everything except the stash probe itself (see McCuckooTable). `sink`
  /// is the live TableMetrics for scalar calls, a stack-local LookupTally
  /// for batches and optimistic attempts.
  template <typename MetricsSink>
  MainOutcome FindNoStatsMain(const Key& key, const Candidates& cand,
                              Value* out, MetricsSink& sink) const {
    const uint32_t d = opts_.num_hashes;
    const uint32_t l = opts_.slots_per_bucket;
    // One aligned header load per candidate bucket answers occupancy,
    // tombstones and tag matches together; the slot lines are touched only
    // for tag-matching occupied slots. Racing writers may tear these reads
    // — the optimistic callers discard the result via seqlock validation,
    // and slot indices stay in range regardless (meta/tag bytes past l are
    // never written, so no match bit can point there).
    const BucketHeader* hdr[kMaxHashes] = {};
    uint64_t meta[kMaxHashes];
    uint32_t match[kMaxHashes];
    for (uint32_t t = 0; t < d; ++t) {
      hdr[t] = &counters_.HeaderAt(cand.bucket[t]);
      // Start the candidate slot lines toward the core while the headers
      // are screened: the hit path's header -> slot dependence is the
      // longest miss chain left. A pure overlap hint — the modeled reads
      // are decided by the probe rules alone, never by what is cached.
      __builtin_prefetch(&slots_[cand.bucket[t] * l], 0, 1);
    }
    if (probe_simd_) {
      SimdTagMatchMasks(hdr, d, cand.tag, match);
    } else {
      for (uint32_t t = 0; t < d; ++t) {
        match[t] = TagMatchMaskScalar(*hdr[t], cand.tag);
      }
    }
    for (uint32_t t = 0; t < d; ++t) meta[t] = HdrMetaWord(*hdr[t]);

    bool any_zero_bucket = false;
    bool all_buckets_all_ones = true;
    bool read_flag_zero = false;
    bool found = false;
    uint32_t probes_total = 0;
    int32_t hit_value = -1;
    for (uint32_t t = 0; t < d && !found; ++t) {
      const bool occupied = (meta[t] & kHdrCounterRep) != 0;
      if ((meta[t] & kHdrCounterRep) != counters_.ones_word()) {
        all_buckets_all_ones = false;
      }
      if (meta[t] == 0) any_zero_bucket = true;  // no occupants, no tombs
      if (opts_.lookup_pruning_enabled && !occupied) continue;
      if (meta[t] != 0) ++probes_total;  // one bucket fetch
      if (!flags_.Test(cand.bucket[t])) read_flag_zero = true;
      for (uint32_t m = match[t]; m != 0; m &= m - 1) {
        const uint32_t s = static_cast<uint32_t>(__builtin_ctz(m));
        const Slot& slot = slots_[cand.bucket[t] * l + s];
        if (slot.key == key) {
          if (out != nullptr) *out = slot.value;
          hit_value =
              static_cast<int32_t>((meta[t] >> (8 * s)) & kHdrCounterMask);
          found = true;
          break;
        }
      }
    }
    if constexpr (kMetricsEnabled) {
      sink.RecordLookupOutcome(probes_total, hit_value);
    }
    if (found) return MainOutcome::kHit;
    // The empty() read is a plain size check, memory-safe even when racing
    // a writer; optimistic callers validate the aux stripe before trusting
    // it.
    if (stash_.empty()) return MainOutcome::kMiss;
    if (opts_.stash_kind == StashKind::kOnchipChs) {
      return MainOutcome::kCheckStash;
    }
    if (opts_.stash_screen_enabled) {
      if (opts_.deletion_mode == DeletionMode::kDisabled &&
          !all_buckets_all_ones) {
        return MainOutcome::kMiss;
      }
      if (opts_.deletion_mode == DeletionMode::kTombstone &&
          any_zero_bucket) {
        return MainOutcome::kMiss;
      }
      if (read_flag_zero) return MainOutcome::kMiss;
    }
    return MainOutcome::kCheckStash;
  }

  /// FindNoStats body over precomputed candidates: the main-table probe
  /// plus, when the screen allows it, the actual stash probe.
  template <typename MetricsSink>
  bool FindNoStatsImpl(const Key& key, const Candidates& cand, Value* out,
                       MetricsSink& sink) const {
    switch (FindNoStatsMain(key, cand, out, sink)) {
      case MainOutcome::kHit:
        return true;
      case MainOutcome::kMiss:
        return false;
      case MainOutcome::kCheckStash:
        break;
    }
    const bool hit = stash_.Find(key, out);
    sink.RecordStashProbe(hit);
    return hit;
  }

 public:
  /// Deletes `key` (Algorithm 3, Fig 8): zero off-chip writes.
  bool Erase(const Key& key) {
    ScopedLatencySample lat(latency_.get(), LatencyOp::kErase);
    if (opts_.deletion_mode == DeletionMode::kDisabled) {
      std::fprintf(stderr,
                   "BlockedMcCuckooTable::Erase called with "
                   "DeletionMode::kDisabled\n");
      std::abort();
    }
    CandidateView view;
    Position pos;
    if (FindInMain(key, ComputeCandidates(key), nullptr, &view, &pos)) {
      CopySet copies = LocateAllCopies(key, pos, CounterAt(pos));
      for (uint32_t i = 0; i < copies.count; ++i) {
        SeqOpen(copies.pos[i].bucket);
        const size_t idx = SlotIndex(copies.pos[i]);
        if (opts_.deletion_mode == DeletionMode::kTombstone) {
          counters_.MarkDeleted(idx);
        } else {
          counters_.Set(idx, 0);
        }
      }
      --size_;
      SeqFlush();
      metrics_->RecordErase();
      return true;
    }
    if (ShouldProbeStash(view)) {
      ChargeStashProbe();
      SeqOpenAux();
      const bool hit = stash_.Erase(key);
      SeqFlush();
      metrics_->RecordStashProbe(hit);
      if (hit) {
        ChargeStashWrite();
        ++stale_stash_flag_keys_;
        metrics_->RecordErase();
        return true;
      }
    }
    return false;
  }

  /// Full rehash into a table of `new_buckets_per_table` buckets per
  /// sub-table under a fresh hash family seeded by `new_seed` — the costly
  /// remedy for insertion failures that the stash exists to avoid (§I.2),
  /// provided for completeness and for growing a long-lived table. Reads
  /// out every live item (charged: one read per old bucket plus the
  /// re-insertion traffic) and rebuilds; stashed items are re-tried first.
  /// Fails without touching the table if the new capacity cannot hold the
  /// current items.
  Status Rehash(uint64_t new_buckets_per_table, uint64_t new_seed) {
    const uint64_t t0 = MetricsNowNs();
    TableOptions new_opts = opts_;
    new_opts.buckets_per_table = new_buckets_per_table;
    new_opts.seed = new_seed;
    Status s = new_opts.Validate();
    if (!s.ok()) return s;
    if (new_opts.capacity() < TotalItems()) {
      return Status::InvalidArgument(
          "rehash target smaller than the current item count");
    }
    // "Reading out all inserted items and using a different set of hash
    // functions to put them into a bigger table" (§I.2).
    std::vector<std::pair<Key, Value>> items;
    items.reserve(TotalItems());
    std::unordered_map<Key, bool> seen;
    const uint32_t l = opts_.slots_per_bucket;
    for (size_t bucket = 0; bucket < flags_.size(); ++bucket) {
      ++stats_->offchip_reads;  // full scan of the old table, per bucket
      for (uint32_t slot = 0; slot < l; ++slot) {
        const size_t idx = bucket * l + slot;
        if (counters_.PeekCounter(idx) == 0) continue;
        const Slot& b = slots_[idx];
        if (seen.emplace(b.key, true).second) {
          items.emplace_back(b.key, b.value);
        }
      }
    }
    for (const auto& [k, v] : stash_.Items()) {
      ++stats_->offchip_reads;
      items.emplace_back(k, v);
    }

    // The rebuild runs with growth disabled: a re-insertion overflow must
    // not recursively rehash the table being built. The caller-visible
    // growth config is restored onto the rebuilt options before commit.
    TableOptions build_opts = new_opts;
    build_opts.growth.enabled = false;
    BlockedMcCuckooTable rebuilt(build_opts);
    for (const auto& [k, v] : items) {
      rebuilt.Insert(k, v);
    }
    rebuilt.opts_.growth = new_opts.growth;
    // Discard any degraded-state signal the growth-disabled rebuild
    // raised; the live policy re-evaluates pressure after the commit.
    rebuilt.metrics_->SetGrowthSuppressed(false);
    // Keep lifetime counters across the rebuild.
    rebuilt.redundant_writes_ += redundant_writes_;
    rebuilt.first_collision_items_ = first_collision_items_;
    rebuilt.first_failure_items_ = first_failure_items_;
    const size_t moved_items = items.size();
    SeqlockArray* seq = seq_;
    if (seq == nullptr) {
      *rebuilt.stats_ += *stats_;
      rebuilt.metrics_->MergeFrom(*metrics_);
      // Latency samples and the span timeline describe this table's
      // lifetime too — carry them like the metrics.
      rebuilt.latency_->MergeFrom(*latency_);
      rebuilt.spans_ = std::move(spans_);
      // The policy and epoch describe this table's lifetime, not the
      // scratch rebuild's: carry them across the wholesale move.
      const uint64_t epoch = rehash_epoch_ + 1;
      GrowthPolicy saved_growth = std::move(growth_);
      *this = std::move(rebuilt);
      growth_ = std::move(saved_growth);
      rehash_epoch_ = epoch;
      metrics_->RecordRehash(MetricsNowNs() - t0);
      spans_.Record(SpanKind::kRehash, t0, MetricsNowNs(), moved_items);
      return Status::OK();
    }
    // The attached version array survives the rebuild (mask mapping is
    // size-independent); the swap reallocates every slot, so it runs under
    // the aux stripe to invalidate in-flight optimistic reads. The
    // concurrent wrappers' exclusive sections already hold the aux stripe
    // open around the whole call; only open it here when no outer writer
    // does, so the stripe stays odd through the commit either way
    // (WriteBegin is a blind increment — double-opening would flip it even).
    const bool aux_held =
        SeqlockArray::IsWriting(seq->Version(seq->aux_stripe()));
    if (!aux_held) seq->WriteBegin(seq->aux_stripe());
    CommitRebuildLockFree(std::move(rebuilt));  // leaves seq_ untouched
    if (!aux_held) seq->WriteEnd(seq->aux_stripe());
    metrics_->RecordRehash(MetricsNowNs() - t0);
    spans_.Record(SpanKind::kRehash, t0, MetricsNowNs(), moved_items);
    return Status::OK();
  }

  // --- Stash maintenance ---------------------------------------------------

  /// Attempts to move stashed items back into free/redundant slots.
  size_t TryDrainStash() {
    size_t drained = 0;
    for (const auto& [k, v] : stash_.Items()) {
      Candidates cand = ComputeCandidates(k);
      if (TryPlace(k, v, cand) > 0) {
        SeqOpenAux();
        stash_.Erase(k);
        ChargeStashWrite();
        ++size_;
        ++drained;
      }
      SeqFlush();  // per item: slot copies and stash removal together
    }
    return drained;
  }

  /// Resets all stash flags and re-marks current stash items (§III.F).
  void RebuildStashFlags() {
    // Word-at-a-time scan of the set bits; one charged write per flag
    // actually cleared, as before. Cleared and re-set flags publish
    // together (SeqFlush at the end): a reader validating in between
    // would false-miss a stashed key.
    flags_.ForEachSetBit([&](size_t bucket) {
      SeqOpen(bucket);
      ++stats_->offchip_writes;
    });
    flags_.ClearAll();
    for (const auto& [k, v] : stash_.Items()) {
      (void)v;
      Candidates cand = ComputeCandidates(k);
      for (uint32_t t = 0; t < opts_.num_hashes; ++t) SetFlag(cand.bucket[t]);
    }
    stale_stash_flag_keys_ = 0;
    SeqFlush();
  }

  // --- Introspection -------------------------------------------------------

  size_t size() const { return size_; }
  size_t stash_size() const { return stash_.size(); }
  size_t TotalItems() const { return size_ + stash_.size(); }
  uint64_t capacity() const { return slots_.size(); }
  double load_factor() const {
    return static_cast<double>(TotalItems()) / static_cast<double>(capacity());
  }
  const TableOptions& options() const { return opts_; }
  const AccessStats& stats() const { return *stats_; }
  void ResetStats() { *stats_ = AccessStats{}; }

  /// Point-in-time metrics copy with the occupancy/capacity gauges filled
  /// (all zeros under -DMCCUCKOO_NO_METRICS).
  MetricsSnapshot SnapshotMetrics() const {
    MetricsSnapshot s = metrics_->Snapshot();
    s.occupancy_items = TotalItems();
    s.capacity_slots = capacity();
    latency_->FoldInto(&s);
    for (size_t k = 0; k < kSpanKinds; ++k) {
      s.span_counts[k] += spans_.Totals()[k];
    }
    return s;
  }

  /// Clears the metrics, the kick-chain trace ring, the latency samples,
  /// and the span ring.
  void ResetMetrics() {
    metrics_->Reset();
    trace_.Clear();
    latency_->Reset();
    spans_.Clear();
  }

  /// Kick-chain trace ring (post-mortem inspection of recent chains).
  const TraceRecorder& trace() const { return trace_; }

  /// Span timeline ring (growth/rehash/reseed/dead-end/spill events).
  const SpanRecorder& spans() const { return spans_; }

  /// Sampled op-latency recorder.
  LatencyRecorder& latency() const { return *latency_; }

  /// Scans the table into an occupancy/counter heatmap at the requested
  /// region resolution. Regions are runs of whole buckets; counter_values
  /// counts slots by counter value (a blocked bucket has l counters).
  HeatmapSnapshot Heatmap(size_t regions = 64) const {
    HeatmapSnapshot h;
    const size_t buckets = flags_.size();
    const uint32_t l = opts_.slots_per_bucket;
    if (regions == 0) regions = 1;
    if (regions > buckets) regions = buckets;
    h.region_occupied.assign(regions, 0);
    h.region_slots.assign(regions, 0);
    h.total_buckets = buckets;
    h.total_slots = slots_.size();
    const size_t per_region = (buckets + regions - 1) / regions;
    for (size_t bucket = 0; bucket < buckets; ++bucket) {
      const size_t region = bucket / per_region;
      h.region_slots[region] += l;
      for (uint32_t slot = 0; slot < l; ++slot) {
        const uint64_t c = counters_.PeekCounter(bucket * l + slot);
        const size_t cv = c < kMetricsPartitions ? c : kMetricsPartitions - 1;
        ++h.counter_values[cv];
        if (c != 0) {
          ++h.region_occupied[region];
          ++h.occupied_slots;
        }
      }
    }
    return h;
  }

  /// Which tag-probe kernel this instance resolved to ("simd"/"scalar");
  /// bench keys embed it.
  const char* probe_variant() const { return probe_simd_ ? "simd" : "scalar"; }

  uint64_t first_collision_items() const { return first_collision_items_; }
  uint64_t first_failure_items() const { return first_failure_items_; }
  uint64_t redundant_writes() const { return redundant_writes_; }
  uint64_t stale_stash_flag_keys() const { return stale_stash_flag_keys_; }

  /// Times a CHS-style on-chip stash exceeded its capacity — events where a
  /// real deployment would have had to rehash (§II.B).
  uint64_t forced_rehash_events() const { return forced_rehash_events_; }
  size_t onchip_memory_bytes() const {
    return counters_.counter_bytes() + kick_history_.memory_bytes();
  }

  /// Invokes `fn(key, value)` once per live key (main table + stash), in
  /// unspecified order. Uncharged maintenance/snapshot path.
  template <typename Fn>
  void ForEachItem(Fn&& fn) const {
    std::unordered_map<Key, bool> seen;
    for (size_t idx = 0; idx < slots_.size(); ++idx) {
      if (counters_.PeekCounter(idx) == 0) continue;
      const Slot& b = slots_[idx];
      if (seen.emplace(b.key, true).second) fn(b.key, b.value);
    }
    for (const auto& [k, v] : stash_.Items()) fn(k, v);
  }

  /// Number of live copies of `key` (uncharged; testing).
  uint32_t CountCopies(const Key& key) const {
    Candidates cand = ComputeCandidates(key);
    uint32_t copies = 0;
    for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
      for (uint32_t s = 0; s < opts_.slots_per_bucket; ++s) {
        const size_t idx = cand.bucket[t] * opts_.slots_per_bucket + s;
        if (counters_.PeekCounter(idx) > 0 && slots_[idx].key == key) ++copies;
      }
    }
    return copies;
  }

  /// Exhaustive structural check (uncharged; testing).
  Status ValidateInvariants() const {
    std::unordered_map<Key, std::vector<size_t>> copies;
    const uint64_t nb = opts_.buckets_per_table;
    const uint32_t l = opts_.slots_per_bucket;
    for (size_t idx = 0; idx < slots_.size(); ++idx) {
      const uint64_t c = counters_.PeekCounter(idx);
      if (counters_.PeekTombstone(idx)) {
        if (opts_.deletion_mode != DeletionMode::kTombstone) {
          return Status::Internal("tombstone outside kTombstone mode");
        }
        continue;
      }
      if (c == 0) continue;
      if (c > opts_.num_hashes) {
        return Status::Internal("counter exceeds d at " + std::to_string(idx));
      }
      const size_t bucket = idx / l;
      const uint32_t t = static_cast<uint32_t>(bucket / nb);
      const uint64_t b = bucket % nb;
      if (family_.Bucket(slots_[idx].key, t) != b) {
        return Status::Internal("occupant does not hash to bucket " +
                                std::to_string(idx));
      }
      // Every occupied slot's header tag must fingerprint its occupant —
      // the probe kernels rely on a mismatch proving a different key.
      if (counters_.PeekTag(idx) != family_.TagOf(slots_[idx].key)) {
        return Status::Internal("stale header tag at " + std::to_string(idx));
      }
      copies[slots_[idx].key].push_back(idx);
    }
    for (const auto& [k, positions] : copies) {
      // At most one copy per bucket.
      std::vector<size_t> buckets;
      for (size_t idx : positions) buckets.push_back(idx / l);
      std::sort(buckets.begin(), buckets.end());
      if (std::adjacent_find(buckets.begin(), buckets.end()) !=
          buckets.end()) {
        return Status::Internal("two copies of one key in one bucket");
      }
      for (size_t idx : positions) {
        if (counters_.PeekCounter(idx) != positions.size()) {
          return Status::Internal("counter != copy count at " +
                                  std::to_string(idx));
        }
        if (!(slots_[idx].value == slots_[positions.front()].value)) {
          return Status::Internal("diverged copy values for a key");
        }
      }
    }
    if (copies.size() != size_) {
      return Status::Internal("size_ does not match live distinct keys");
    }
    return Status::OK();
  }

  /// Debug-only consistency check for tests: runs ValidateInvariants and
  /// additionally verifies that every stashed key still has its stash flag
  /// set at every candidate bucket (flags are set on all candidates at
  /// stash time and only cleared by rebuilds, so a missing flag would make
  /// the key invisible to screened lookups). Flags may be stale-set — they
  /// are sticky by design — but never missing for a stashed key. Compiles
  /// to a no-op in release builds.
  Status CheckInvariants() const {
#ifdef NDEBUG
    return Status::OK();
#else
    if (Status s = ValidateInvariants(); !s.ok()) return s;
    if (opts_.stash_kind == StashKind::kOffchip) {
      for (const auto& [k, v] : stash_.Items()) {
        const Candidates cand = ComputeCandidates(k);
        for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
          if (!flags_.Test(cand.bucket[t])) {
            return Status::Internal(
                "stashed key lacks a candidate stash flag at bucket " +
                std::to_string(cand.bucket[t]));
          }
          // Without deletions the screen additionally relies on every
          // stashed key's candidate buckets staying all-ones forever: the
          // key was stashed only after TryPlace saw every slot at counter
          // 1, and a counter-1 slot can never fall to 0 nor climb past 1.
          if (opts_.deletion_mode == DeletionMode::kDisabled) {
            for (uint32_t s = 0; s < opts_.slots_per_bucket; ++s) {
              const size_t si = SlotIndex(Position{cand.bucket[t], s});
              if (counters_.PeekCounter(si) != 1) {
                return Status::Internal(
                    "stashed key candidate bucket " +
                    std::to_string(cand.bucket[t]) + " slot " +
                    std::to_string(s) + " has counter " +
                    std::to_string(counters_.PeekCounter(si)) +
                    " != 1 under kDisabled; the stash screen would veto "
                    "lookups");
              }
            }
          }
        }
      }
    }
    return Status::OK();
#endif
  }

  /// Read-only view of the auto-growth state machine (tests/diagnostics).
  const GrowthPolicy& growth_policy() const { return growth_; }

  /// Bumps on every committed Rehash (manual or auto-growth); batch paths
  /// use it to detect a mid-batch geometry/seed change.
  uint64_t rehash_epoch() const { return rehash_epoch_; }

 private:
  /// Charges one stash probe: an off-chip read for the paper's off-chip
  /// stash, an on-chip read for the classic CHS stash.
  void ChargeStashProbe() {
    ++stats_->stash_probes;
    if (opts_.stash_kind == StashKind::kOffchip) {
      ++stats_->offchip_reads;
    } else {
      ++stats_->onchip_reads;
    }
  }

  /// Charges one stash mutation (store/erase).
  void ChargeStashWrite() {
    if (opts_.stash_kind == StashKind::kOffchip) {
      ++stats_->offchip_writes;
    } else {
      ++stats_->onchip_writes;
    }
  }

  static constexpr size_t kNoBucket = static_cast<size_t>(-1);

  Candidates ComputeCandidates(const Key& key) const {
    Candidates c{};
    // Fused: the tag falls out of the hash evaluation the family already
    // does for the bucket indices (for DoubleHashFamily this path is also
    // 2 hashes instead of 2 per sub-table).
    const std::array<uint64_t, kMaxHashes> b = family_.Buckets(key, &c.tag);
    for (uint32_t t = 0; t < opts_.num_hashes; ++t) {
      c.bucket[t] = static_cast<size_t>(t) * opts_.buckets_per_table + b[t];
    }
    return c;
  }

  // --- batching stage 1: hash + prefetch ---------------------------------

  /// Hashes `n` keys via the family's batch entry point and prefetches
  /// every candidate bucket's slot lines (a bucket spans l * sizeof(Slot)
  /// bytes, possibly several cache lines) plus the bucket's counter words.
  /// Pure hint stage; charges nothing.
  void StageCandidates(const Key* keys, size_t n, Candidates* cand,
                       bool for_write) const {
    std::array<std::array<uint64_t, kMaxHashes>, kBatchTile> buckets;
    std::array<uint8_t, kBatchTile> tags;
    family_.BucketsBatch(keys, n, buckets.data(), tags.data());
    const uint32_t d = opts_.num_hashes;
    const uint32_t l = opts_.slots_per_bucket;
    for (size_t i = 0; i < n; ++i) {
      cand[i].tag = tags[i];
      for (uint32_t t = 0; t < d; ++t) {
        cand[i].bucket[t] = static_cast<size_t>(t) * opts_.buckets_per_table +
                            buckets[i][t];
      }
    }
    for (size_t i = 0; i < n; ++i) {
      for (uint32_t t = 0; t < d; ++t) {
        // One line covers the bucket's whole header (tags, counters,
        // tombstones) — the old layout needed two counter words plus a
        // tombstone word from separate allocations.
        counters_.Prefetch(cand[i].bucket[t] * l);
        // The stash-flag word is consulted during every probed bucket's
        // scan; packed flags make it one explicit line.
        __builtin_prefetch(flags_.WordAddr(cand[i].bucket[t]), 0, 1);
      }
    }
    const size_t bucket_bytes = static_cast<size_t>(l) * sizeof(Slot);
    for (size_t i = 0; i < n; ++i) {
      for (uint32_t t = 0; t < d; ++t) {
        const char* base =
            reinterpret_cast<const char*>(&slots_[cand[i].bucket[t] * l]);
        for (size_t off = 0; off < bucket_bytes; off += 64) {
          if (for_write) {
            __builtin_prefetch(base + off, 1, 3);
          } else {
            __builtin_prefetch(base + off, 0, 1);
          }
        }
      }
    }
  }

  /// Scalar Find body over precomputed candidates — the hot read path.
  /// `sink` is the live TableMetrics for scalar calls, a stack-local
  /// LookupTally for batches.
  ///
  /// Physically this touches one header line per candidate bucket plus the
  /// slot lines of tag-matching occupied slots; the stash-flag words are
  /// read only on the miss path. The *modeled* accounting is bit-identical
  /// to the per-slot implementation it replaces: d*l on-chip counter reads
  /// (doubled by the tombstone probes in kTombstone mode), one off-chip
  /// read per probed bucket, and the same probe rule — pruning skips
  /// zero-sum buckets, without pruning only buckets with nothing live (no
  /// occupants, no tombstones) are skipped.
  template <typename MetricsSink>
  bool FindImpl(const Key& key, const Candidates& cand, Value* out,
                MetricsSink& sink) const {
    const uint32_t d = opts_.num_hashes;
    const uint32_t l = opts_.slots_per_bucket;
    counters_.ChargeReads(
        static_cast<uint64_t>(d) * l *
        (opts_.deletion_mode == DeletionMode::kTombstone ? 2 : 1));

    const BucketHeader* hdr[kMaxHashes] = {};
    uint64_t meta[kMaxHashes];
    uint32_t match[kMaxHashes];
    for (uint32_t t = 0; t < d; ++t) {
      hdr[t] = &counters_.HeaderAt(cand.bucket[t]);
      // Start the candidate slot lines toward the core while the headers
      // are screened: the hit path's header -> slot dependence is the
      // longest miss chain left. A pure overlap hint — the modeled reads
      // are decided by the probe rules alone, never by what is cached.
      __builtin_prefetch(&slots_[cand.bucket[t] * l], 0, 1);
    }
    if (probe_simd_) {
      SimdTagMatchMasks(hdr, d, cand.tag, match);
    } else {
      for (uint32_t t = 0; t < d; ++t) {
        match[t] = TagMatchMaskScalar(*hdr[t], cand.tag);
      }
    }
    for (uint32_t t = 0; t < d; ++t) meta[t] = HdrMetaWord(*hdr[t]);

    auto* self = const_cast<BlockedMcCuckooTable*>(this);
    uint32_t probes_total = 0;
    for (uint32_t t = 0; t < d; ++t) {
      const bool occupied = (meta[t] & kHdrCounterRep) != 0;
      if (!occupied && (opts_.lookup_pruning_enabled || meta[t] == 0)) {
        continue;
      }
      self->ChargeBucketRead();
      ++probes_total;
      for (uint32_t m = match[t]; m != 0; m &= m - 1) {
        const uint32_t s = static_cast<uint32_t>(__builtin_ctz(m));
        const Slot& slot = slots_[cand.bucket[t] * l + s];
        if (slot.key == key) {
          if (out != nullptr) *out = slot.value;
          if constexpr (kMetricsEnabled) {
            sink.RecordLookupOutcome(
                probes_total,
                static_cast<int32_t>((meta[t] >> (8 * s)) & kHdrCounterMask));
          }
          return true;
        }
      }
    }
    if constexpr (kMetricsEnabled) sink.RecordLookupOutcome(probes_total, -1);
    if (ShouldProbeStashHdr(cand, meta, d)) {
      self->ChargeStashProbe();
      const bool hit = stash_.Find(key, out);
      sink.RecordStashProbe(hit);
      return hit;
    }
    return false;
  }

  /// ShouldProbeStash over the header meta words (§III.E/F, Algorithm 2).
  /// Same rules as the CandidateView form; the per-bucket flags are read
  /// lazily here, only after the counter rules pass and only for buckets
  /// the probe loop above would have fetched.
  bool ShouldProbeStashHdr(const Candidates& cand, const uint64_t* meta,
                           uint32_t d) const {
    if (stash_.empty()) return false;
    if (opts_.stash_kind == StashKind::kOnchipChs) return true;  // free probe
    if (!opts_.stash_screen_enabled) return true;

    if (opts_.deletion_mode == DeletionMode::kDisabled) {
      for (uint32_t t = 0; t < d; ++t) {
        if ((meta[t] & kHdrCounterRep) != counters_.ones_word()) return false;
      }
      // All-ones buckets all have sum > 0, so each was probed and its
      // flag is decisive.
      for (uint32_t t = 0; t < d; ++t) {
        if (!flags_.Test(cand.bucket[t])) return false;
      }
      return true;
    }
    if (opts_.deletion_mode == DeletionMode::kTombstone) {
      // True all-zero buckets (no tombstones) still prove "never inserted".
      for (uint32_t t = 0; t < d; ++t) {
        if (meta[t] == 0) return false;
      }
    }
    for (uint32_t t = 0; t < d; ++t) {
      const bool probed = opts_.lookup_pruning_enabled
                              ? (meta[t] & kHdrCounterRep) != 0
                              : meta[t] != 0;
      if (probed && !flags_.Test(cand.bucket[t])) return false;
    }
    return true;
  }

  /// Scalar Insert body over precomputed candidates.
  InsertResult InsertWithCandidates(const Key& key, const Value& value,
                                    const Candidates& cand) {
    const uint64_t t0 = MetricsNowNs();
    const uint32_t placed = TryPlace(key, value, cand);
    if (placed > 0) {
      ++size_;
      SeqFlush();
      metrics_->RecordInsert(/*chain_len=*/0, MetricsNowNs() - t0);
      growth_.ObserveInsert(/*overflowed=*/false, 0, opts_.maxloop);
      MaybeGrow();
      return InsertResult::kInserted;
    }
    if (first_collision_items_ == 0) {
      first_collision_items_ = TotalItems() + 1;
    }
    const bool bfs = opts_.eviction_policy == EvictionPolicy::kBfs;
    uint32_t chain_len = 0;
    uint32_t bfs_nodes = 0;
    uint32_t bfs_budget = 0;
    const InsertResult r =
        bfs ? BfsInsert(key, value, cand, &chain_len, &bfs_nodes, &bfs_budget)
            : RandomWalkInsert(key, value, &chain_len);
    // Whole chain published at once (see McCuckooTable).
    SeqFlush();
    metrics_->RecordInsert(chain_len, MetricsNowNs() - t0);
    metrics_->RecordPolicyChain(
        static_cast<uint32_t>(opts_.eviction_policy), chain_len);
    if (bfs) metrics_->RecordBfsNodes(bfs_nodes);
    growth_.ObserveInsert(r != InsertResult::kInserted, chain_len,
                          opts_.maxloop, bfs_nodes, bfs_budget);
    MaybeGrow();
    return r;
  }

  /// Evaluates the growth policy after an insertion and acts on its
  /// decision. Called with no stripes open (SeqFlush done): Rehash opens
  /// the aux stripe itself when the outer writer section does not already
  /// hold it, so a grow commits safely under live optimistic readers.
  void MaybeGrow() {
    const GrowthDecision d = growth_.Decide(
        {TotalItems(), opts_.capacity(), stash_.size(),
         opts_.buckets_per_table});
    if (d.action == GrowthAction::kNone) return;
    if (d.action == GrowthAction::kSuppressed) {
      metrics_->SetGrowthSuppressed(true);
      return;
    }
    Status s;
    const uint64_t grow_t0 = MetricsNowNs();
    try {
      s = Rehash(d.new_buckets_per_table, growth_.NextSeed(opts_.seed));
    } catch (const std::bad_alloc&) {
      s = Status::ResourceExhausted("auto-growth allocation failed");
    }
    if (s.ok()) {
      growth_.OnRehashSuccess(d.action);
      metrics_->RecordGrowthRehash(d.action == GrowthAction::kReseed);
      metrics_->SetGrowthSuppressed(false);
      spans_.Record(d.action == GrowthAction::kReseed ? SpanKind::kReseed
                                                      : SpanKind::kGrowth,
                    grow_t0, MetricsNowNs(), d.new_buckets_per_table);
    } else {
      growth_.OnRehashFailure();
      metrics_->RecordGrowthFailure();
      metrics_->SetGrowthSuppressed(true);
    }
  }

  size_t SlotIndex(const Position& p) const {
    return p.bucket * opts_.slots_per_bucket + p.slot;
  }

  uint64_t CounterAt(const Position& p) const {
    return counters_.Get(SlotIndex(p));
  }

  static uint32_t TableOf(size_t bucket, uint64_t buckets_per_table) {
    return static_cast<uint32_t>(bucket / buckets_per_table);
  }

  // --- seqlock writer hooks -----------------------------------------------
  //
  // Stripes are at bucket granularity (the reader validates whole candidate
  // buckets); every reader-visible mutation opens its bucket's stripe, and
  // the operation publishes all opened stripes at once via SeqFlush() — see
  // McCuckooTable's hooks for the kick-chain rationale. All no-ops when no
  // SeqlockArray is attached.

  void SeqOpen(size_t bucket) {
    if (seq_ != nullptr) seq_open_.Open(*seq_, seq_->StripeOf(bucket));
  }

  void SeqOpenAux() {
    if (seq_ != nullptr) seq_open_.Open(*seq_, seq_->aux_stripe());
  }

  void SeqFlush() {
    if (seq_ != nullptr) seq_open_.CloseAll(*seq_);
  }

  // --- charged memory choke points ----------------------------------------

  /// Fetches a whole bucket: one off-chip access regardless of l ([33]).
  void ChargeBucketRead() { ++stats_->offchip_reads; }

  /// Writes one slot (record + hints share the slot's memory word) and
  /// refreshes its header tag in the same seqlock window, so readers never
  /// see a fresh key behind a stale fingerprint. The tag store is layout
  /// state, not a modeled access (uncharged).
  void WriteSlot(const Position& p, const Slot& record) {
    SeqOpen(p.bucket);
    ++stats_->offchip_writes;
    const size_t idx = SlotIndex(p);
    slots_[idx] = record;
    counters_.SetTag(idx, family_.TagOf(record.key));
  }

  /// Value-only update preserving the stored hints.
  void WriteSlotValue(const Position& p, const Key& key, const Value& value) {
    SeqOpen(p.bucket);
    ++stats_->offchip_writes;
    Slot& s = slots_[SlotIndex(p)];
    s.key = key;
    s.value = value;
  }

  void SetFlag(size_t bucket) {
    SeqOpen(bucket);
    ++stats_->offchip_writes;
    flags_.Set(bucket);
  }

  // --- insertion -------------------------------------------------------------

  /// Algorithm 1's placement phases, decided entirely on-chip before any
  /// write. Returns the number of copies placed (0 = collision).
  uint32_t TryPlace(const Key& key, const Value& value,
                    const Candidates& cand) {
    const uint32_t d = opts_.num_hashes;
    const uint32_t l = opts_.slots_per_bucket;

    std::array<Position, kMaxHashes> placed{};
    std::array<bool, kMaxHashes> bucket_taken{};
    uint32_t n_placed = 0;

    // Phase 1: one copy into an empty slot of every candidate bucket.
    for (uint32_t t = 0; t < d; ++t) {
      for (uint32_t s = 0; s < l; ++s) {
        const Position p{cand.bucket[t], s};
        if (counters_.Get(SlotIndex(p)) == 0) {
          placed[n_placed++] = p;
          bucket_taken[t] = true;
          break;
        }
      }
    }

    // Phase 2: overwrite redundant copies, most-redundant victim first,
    // while the victim keeps a two-copy lead (V >= n_placed + 2). Counters
    // are re-read per round (one insert can hit the same victim twice).
    while (n_placed < d) {
      int best_t = -1;
      Position best_pos{};
      uint64_t best_v = 0;
      uint64_t best_sum = 0;
      for (uint32_t t = 0; t < d; ++t) {
        if (bucket_taken[t]) continue;
        uint64_t sum = 0;
        uint64_t bucket_best_v = 0;
        uint32_t bucket_best_s = 0;
        for (uint32_t s = 0; s < l; ++s) {
          const uint64_t c =
              counters_.Get(cand.bucket[t] * l + s);
          sum += c;
          if (c > bucket_best_v) {
            bucket_best_v = c;
            bucket_best_s = s;
          }
        }
        // Bucket availability is judged by the counter sum (§III.G); the
        // victim inside it is the highest-counter slot.
        if (bucket_best_v > best_v ||
            (bucket_best_v == best_v && sum > best_sum)) {
          best_v = bucket_best_v;
          best_sum = sum;
          best_t = static_cast<int>(t);
          best_pos = Position{cand.bucket[t], bucket_best_s};
        }
      }
      if (best_t < 0 || best_v < 2 || best_v < n_placed + 2) break;
      OverwriteRedundantCopy(best_pos, best_v);
      placed[n_placed++] = best_pos;
      bucket_taken[best_t] = true;
    }

    if (n_placed == 0) return 0;
    CommitPlacement(key, value, placed, n_placed);
    return n_placed;
  }

  /// Writes the record once per placed copy (hints included) and sets the
  /// copies' counters.
  void CommitPlacement(const Key& key, const Value& value,
                       const std::array<Position, kMaxHashes>& placed,
                       uint32_t n_placed) {
    Slot record;
    record.key = key;
    record.value = value;
    record.hint.fill(kNoHint);
    for (uint32_t i = 0; i < n_placed; ++i) {
      const uint32_t t = TableOf(placed[i].bucket, opts_.buckets_per_table);
      record.hint[t] = static_cast<uint8_t>(placed[i].slot);
    }
    for (uint32_t i = 0; i < n_placed; ++i) {
      WriteSlot(placed[i], record);  // opens the bucket's stripe
      counters_.Set(SlotIndex(placed[i]), n_placed);
    }
    redundant_writes_ += n_placed - 1;
  }

  /// Displaces the redundant copy at `victim` (counter `v` >= 2): reads its
  /// bucket to learn the victim's key and hints, then decrements the
  /// victim's other copies. The slot itself is left for the caller to
  /// overwrite (counter updated by CommitPlacement).
  void OverwriteRedundantCopy(const Position& victim, uint64_t v) {
    assert(v >= 2);
    ChargeBucketRead();
    const Slot record = slots_[SlotIndex(victim)];
    CopySet others = LocateOtherCopies(record.key, victim, v, &record.hint);
    for (uint32_t i = 0; i < others.count; ++i) {
      SeqOpen(others.pos[i].bucket);
      counters_.Set(SlotIndex(others.pos[i]), v - 1);
    }
  }

  /// Finds the v-1 positions besides `known` holding copies of `key` (all
  /// counters equal v). Candidate slots are the value-v slots of key's
  /// candidate buckets; buckets are resolved hint-first, and a bucket whose
  /// remaining candidates must all be copies (pigeonhole) is not read.
  CopySet LocateOtherCopies(const Key& key, const Position& known, uint64_t v,
                            const std::array<uint8_t, kMaxHashes>* hints) {
    const uint32_t d = opts_.num_hashes;
    const uint32_t l = opts_.slots_per_bucket;
    Candidates cand = ComputeCandidates(key);

    // Group: candidate slots with counter == v, per bucket, excluding
    // `known` and excluding the bucket that contains `known` (one copy per
    // bucket at most).
    struct BucketGroup {
      size_t bucket;
      uint32_t table;
      std::array<uint32_t, 8> slots;
      uint32_t n_slots = 0;
      bool hinted = false;
    };
    // Hinted buckets are queued first: their read almost always confirms a
    // copy immediately.
    std::array<BucketGroup, kMaxHashes> groups{};
    uint32_t n_groups = 0;
    uint32_t total_slots = 0;
    for (int pass = 0; pass < 2; ++pass) {
      for (uint32_t t = 0; t < d; ++t) {
        if (cand.bucket[t] == known.bucket) continue;
        const bool hinted = hints != nullptr && (*hints)[t] != kNoHint;
        if (hinted != (pass == 0)) continue;
        BucketGroup g{};
        g.bucket = cand.bucket[t];
        g.table = t;
        for (uint32_t s = 0; s < l; ++s) {
          if (counters_.Get(g.bucket * l + s) == v) g.slots[g.n_slots++] = s;
        }
        if (g.n_slots == 0) continue;
        g.hinted = hinted;
        groups[n_groups++] = g;
        total_slots += g.n_slots;
      }
    }

    const uint32_t need = static_cast<uint32_t>(v) - 1;
    CopySet out{};
    if (need == 0) return out;
    assert(total_slots >= need);

    uint32_t confirmed = 0;
    uint32_t unresolved = total_slots;
    for (uint32_t gi = 0; gi < n_groups && confirmed < need; ++gi) {
      const BucketGroup& g = groups[gi];
      // Pigeonhole: if every unresolved candidate slot must be a copy,
      // take them without reading. (A key has at most one copy per bucket,
      // so this can only trigger when each remaining group has one slot.)
      if (unresolved == need - confirmed) {
        bool single_slots = true;
        for (uint32_t gj = gi; gj < n_groups; ++gj) {
          if (groups[gj].n_slots != 1) single_slots = false;
        }
        if (single_slots) {
          for (uint32_t gj = gi; gj < n_groups; ++gj) {
            out.pos[out.count++] =
                Position{groups[gj].bucket, groups[gj].slots[0]};
            ++confirmed;
          }
          break;
        }
      }
      ChargeBucketRead();
      for (uint32_t i = 0; i < g.n_slots; ++i) {
        const Position p{g.bucket, g.slots[i]};
        if (slots_[SlotIndex(p)].key == key) {
          out.pos[out.count++] = p;
          ++confirmed;
          break;  // at most one copy per bucket
        }
      }
      unresolved -= g.n_slots;
    }
    assert(confirmed == need);
    return out;
  }

  CopySet LocateAllCopies(const Key& key, const Position& known, uint64_t v) {
    // The found record's stored hints order the disambiguation reads.
    const std::array<uint8_t, kMaxHashes> hints =
        slots_[SlotIndex(known)].hint;
    CopySet out = LocateOtherCopies(key, known, v, &hints);
    out.pos[out.count++] = known;
    return out;
  }

  /// Shared insertion-failure tail (see McCuckooTable::StashOverflow): the
  /// caller guarantees the item's candidate slots are all sole copies and
  /// records its own trace event.
  InsertResult StashOverflow(const Key& key, const Value& value) {
    if (first_failure_items_ == 0) first_failure_items_ = TotalItems() + 1;
    ChargeStashWrite();
    SeqOpenAux();
    stash_.Insert(key, value);
    spans_.RecordInstant(SpanKind::kStashSpill, stash_.size());
    if (opts_.stash_kind == StashKind::kOffchip) {
      Candidates cand = ComputeCandidates(key);
      for (uint32_t t = 0; t < opts_.num_hashes; ++t) SetFlag(cand.bucket[t]);
    } else if (stash_.size() > opts_.onchip_stash_capacity) {
      ++forced_rehash_events_;  // a real CHS deployment would rehash here
    }
    return opts_.stash_enabled ? InsertResult::kStashed : InsertResult::kFailed;
  }

  /// Random walk at slot granularity: eviction targets are sole copies
  /// (all candidate slot counters are 1 when this is reached). The victim
  /// bucket follows the configured policy — uniform random, MinCounter's
  /// coldest, or bubbling's deterministic level cycle — the slot within it
  /// is uniform. On maxloop overrun the in-hand item gets one final
  /// placement attempt and is otherwise stashed — candidate buckets
  /// provably all-ones.
  InsertResult RandomWalkInsert(Key key, Value value,
                                uint32_t* chain_len_out) {
    size_t exclude_bucket = kNoBucket;
    int32_t from_level = -1;  // bubbling: level the in-hand item left
    uint32_t chain = 0;
    KickChainEvent ev{};  // populated only when metrics are compiled in
    for (uint32_t loop = 0; loop < opts_.maxloop; ++loop) {
      Candidates cand = ComputeCandidates(key);
      if (loop > 0) {
        const uint32_t placed = TryPlace(key, value, cand);
        if (placed > 0) {
          ++size_;
          *chain_len_out = chain;
          if constexpr (kMetricsEnabled) {
            ev.chain_len = chain;
            ev.n_steps = static_cast<uint32_t>(
                std::min<size_t>(chain, kMaxTraceSteps));
            trace_.Record(ev);
          }
          return InsertResult::kInserted;
        }
      }
      const uint32_t t =
          opts_.eviction_policy == EvictionPolicy::kBubble
              ? PickBubbleVictim(cand.bucket, opts_.num_hashes,
                                 exclude_bucket, from_level)
              : PickVictim(cand.bucket, opts_.num_hashes, exclude_bucket,
                           kick_history_, rng_);
      const uint32_t s =
          static_cast<uint32_t>(rng_.Below(opts_.slots_per_bucket));
      const Position p{cand.bucket[t], s};
      if constexpr (kMetricsEnabled) {
        if (chain < kMaxTraceSteps) {
          ev.step[chain] = KickStep{
              static_cast<uint64_t>(cand.bucket[t]),
              static_cast<uint32_t>(counters_.PeekCounter(SlotIndex(p)))};
        }
      }
      ChargeBucketRead();
      Slot victim = slots_[SlotIndex(p)];
      Slot record;
      record.key = key;
      record.value = value;
      record.hint.fill(kNoHint);
      record.hint[t] = static_cast<uint8_t>(s);
      WriteSlot(p, record);
      // Counter stays 1: the slot still holds a sole copy.
      ++stats_->kickouts;
      if (kick_history_.enabled()) kick_history_.Increment(cand.bucket[t]);
      exclude_bucket = cand.bucket[t];
      from_level = static_cast<int32_t>(t);
      key = std::move(victim.key);
      value = std::move(victim.value);
      ++chain;
    }
    // The loop's last iteration evicted one more victim without giving the
    // newly carried item a placement attempt of its own. Complete that step
    // before stashing: otherwise an item with an empty or redundant
    // candidate lands in the stash, and the kDisabled stash screen — which
    // relies on every stashed key having seen all-ones counters — would
    // veto that key's own lookups.
    {
      const Candidates cand = ComputeCandidates(key);
      const uint32_t placed = TryPlace(key, value, cand);
      if (placed > 0) {
        ++size_;
        *chain_len_out = chain;
        if constexpr (kMetricsEnabled) {
          ev.chain_len = chain;
          ev.n_steps =
              static_cast<uint32_t>(std::min<size_t>(chain, kMaxTraceSteps));
          trace_.Record(ev);
        }
        return InsertResult::kInserted;
      }
    }
    *chain_len_out = chain;
    if constexpr (kMetricsEnabled) {
      ev.chain_len = chain;
      ev.n_steps =
          static_cast<uint32_t>(std::min<size_t>(chain, kMaxTraceSteps));
      ev.stashed = true;
      trace_.Record(ev);
      trace_.NoteStashed();
    }
    return StashOverflow(key, value);
  }

  /// Counter-aware BFS at slot granularity (see McCuckooTable::BfsInsert
  /// for the terminal rules). Node ids are global slot indices. Entered
  /// only when TryPlace placed nothing, which proves every candidate slot
  /// of the in-hand key holds a sole copy (phase 1 fills empties, phase 2
  /// with n_placed == 0 takes any counter >= 2), so all d*l candidate
  /// slots are valid interior roots. Expanding a node costs one charged
  /// bucket fetch (occupant key + hints); the occupant's alternate buckets
  /// are screened slot-by-slot entirely on-chip.
  InsertResult BfsInsert(const Key& key, const Value& value,
                         const Candidates& cand, uint32_t* chain_len_out,
                         uint32_t* nodes_out, uint32_t* budget_out) {
    const uint32_t d = opts_.num_hashes;
    const uint32_t l = opts_.slots_per_bucket;
    std::array<uint64_t, kMaxHashes * 8> roots{};
    uint32_t n_roots = 0;
    for (uint32_t t = 0; t < d; ++t) {
      for (uint32_t s = 0; s < l; ++s) {
        roots[n_roots++] = static_cast<uint64_t>(cand.bucket[t] * l + s);
      }
    }
    *budget_out = bfs_throttle_.Budget(BfsNodeBudget(opts_.maxloop));
    const BfsPathResult path = BfsFindPath(
        roots.data(), n_roots, *budget_out,
        [&](uint64_t id, auto&& emit, auto&& terminal) {
          const size_t slot_idx = static_cast<size_t>(id);
          const size_t bucket = slot_idx / l;
          ChargeBucketRead();  // the occupant's record, one bucket fetch
          const Key okey = slots_[slot_idx].key;
          const Candidates oc = ComputeCandidates(okey);
          for (uint32_t t = 0; t < d; ++t) {
            const size_t alt = oc.bucket[t];
            if (alt == bucket) continue;
            for (uint32_t s = 0; s < l; ++s) {
              const size_t alt_idx = alt * l + s;
              const uint64_t c = counters_.Get(alt_idx);
              if (c != 1) {
                terminal(alt_idx);  // 0 = free, >= 2 = redundant copy
                return;
              }
              // Overlap the frontier's DRAM latency (see McCuckooTable).
              __builtin_prefetch(&slots_[alt_idx], 0, 1);
              emit(alt_idx);
            }
          }
        });
    *nodes_out = path.nodes_expanded;
    bfs_throttle_.Observe(path.found);
    if (!path.found) {
      *chain_len_out = 0;
      if constexpr (kMetricsEnabled) {
        KickChainEvent ev{};
        ev.stashed = true;
        trace_.Record(ev);
        trace_.NoteStashed();
      }
      spans_.RecordInstant(SpanKind::kBfsDeadEnd, path.nodes_expanded);
      return StashOverflow(key, value);
    }
    // Apply backward: the last interior occupant moves into the terminal,
    // each predecessor into its successor, the new key into the root. A
    // relocated occupant is a sole copy, so its record is rewritten with a
    // fresh hint set pointing only at its new position.
    KickChainEvent ev{};
    auto position_of = [l](uint64_t id) {
      return Position{static_cast<size_t>(id) / l,
                      static_cast<uint32_t>(id % l)};
    };
    size_t dst = static_cast<size_t>(path.terminal);
    const uint64_t term_v = counters_.PeekCounter(dst);
    for (size_t i = path.node.size(); i-- > 0;) {
      const size_t src = static_cast<size_t>(path.node[i]);
      const Position dst_pos = position_of(dst);
      Slot record = slots_[src];  // read during the search
      record.hint.fill(kNoHint);
      record.hint[TableOf(dst_pos.bucket, opts_.buckets_per_table)] =
          static_cast<uint8_t>(dst_pos.slot);
      if (dst == static_cast<size_t>(path.terminal) && term_v >= 2) {
        // Redundant terminal: displace one copy of the occupant, which
        // decrements its other copies' counters (zero relocations).
        OverwriteRedundantCopy(dst_pos, term_v);
      }
      WriteSlot(dst_pos, record);  // opens the bucket's stripe
      if (dst == static_cast<size_t>(path.terminal)) {
        counters_.Set(dst, 1);  // the moved item is a sole copy
      }
      // Interior destinations already held a sole copy: counter stays 1.
      ++stats_->kickouts;
      if (kick_history_.enabled()) kick_history_.Increment(src / l);
      if constexpr (kMetricsEnabled) {
        if (i < kMaxTraceSteps) {
          ev.step[i] = KickStep{
              static_cast<uint64_t>(src / l),
              static_cast<uint32_t>(counters_.PeekCounter(src))};
        }
      }
      dst = src;
    }
    const Position root_pos = position_of(path.node.front());
    Slot record;
    record.key = key;
    record.value = value;
    record.hint.fill(kNoHint);
    record.hint[TableOf(root_pos.bucket, opts_.buckets_per_table)] =
        static_cast<uint8_t>(root_pos.slot);
    WriteSlot(root_pos, record);
    ++size_;
    const uint32_t chain = static_cast<uint32_t>(path.node.size());
    *chain_len_out = chain;
    if constexpr (kMetricsEnabled) {
      ev.chain_len = chain;
      ev.n_steps =
          static_cast<uint32_t>(std::min<size_t>(chain, kMaxTraceSteps));
      trace_.Record(ev);
    }
    return InsertResult::kInserted;
  }

  // --- lookup -----------------------------------------------------------------

  /// Algorithm 2's main-table probe, over precomputed candidates. On a
  /// hit, fills `*pos` and returns true. Fills `*view` for stash screening
  /// either way.
  bool FindInMain(const Key& key, const Candidates& cand, Value* out,
                  CandidateView* view, Position* pos) {
    const uint32_t d = opts_.num_hashes;
    const uint32_t l = opts_.slots_per_bucket;
    CandidateView& v = *view;
    v.d = d;
    // The model reads every candidate slot's counter, plus its tombstone
    // mark in kTombstone mode; the headers deliver them in one line per
    // bucket but the modeled charge is unchanged.
    counters_.ChargeReads(
        static_cast<uint64_t>(d) * l *
        (opts_.deletion_mode == DeletionMode::kTombstone ? 2 : 1));

    std::array<std::array<uint64_t, 8>, kMaxHashes> slot_counter{};
    for (uint32_t t = 0; t < d; ++t) {
      v.bucket[t] = cand.bucket[t];
      v.bucket_read[t] = false;
      v.flag_value[t] = false;
      const uint64_t meta = HdrMetaWord(counters_.HeaderAt(cand.bucket[t]));
      uint64_t sum = 0;
      for (uint32_t s = 0; s < l; ++s) {
        slot_counter[t][s] = (meta >> (8 * s)) & kHdrCounterMask;
        sum += slot_counter[t][s];
      }
      v.sum[t] = sum;
      v.bloom_nonzero[t] = meta != 0;  // any occupant or tombstone
      v.all_ones[t] = (meta & kHdrCounterRep) == counters_.ones_word();
    }

    for (uint32_t t = 0; t < d; ++t) {
      if (opts_.lookup_pruning_enabled && v.sum[t] == 0) continue;
      if (!opts_.lookup_pruning_enabled && v.sum[t] == 0 &&
          !v.bloom_nonzero[t]) {
        continue;  // nothing live to read even without pruning
      }
      ChargeBucketRead();
      ++v.probes_total;
      v.bucket_read[t] = true;
      v.flag_value[t] = flags_.Test(cand.bucket[t]);
      for (uint32_t s = 0; s < l; ++s) {
        if (slot_counter[t][s] == 0) continue;  // empty/tombstone: stale data
        const size_t idx = cand.bucket[t] * l + s;
        // Fingerprint screen: an occupied slot's tag always reflects its
        // occupant, so a mismatch proves a different key without touching
        // the slot line.
        if (counters_.PeekTag(idx) != cand.tag) continue;
        const Position p{cand.bucket[t], s};
        const Slot& slot = slots_[idx];
        if (slot.key == key) {
          if (out != nullptr) *out = slot.value;
          if (pos != nullptr) *pos = p;
          v.hit_value = static_cast<int32_t>(slot_counter[t][s]);
          return true;
        }
      }
    }
    return false;
  }

  /// Stash screening at bucket granularity (§III.E/F and Algorithm 2).
  bool ShouldProbeStash(const CandidateView& v) const {
    if (stash_.empty()) return false;
    if (opts_.stash_kind == StashKind::kOnchipChs) return true;  // free probe
    if (!opts_.stash_screen_enabled) return true;

    if (opts_.deletion_mode == DeletionMode::kDisabled) {
      // A stashed key saw every candidate slot at counter 1; without
      // deletions sole copies stay sole and empties stay... filled only by
      // full buckets, so any non-all-ones bucket vetoes the probe.
      for (uint32_t t = 0; t < v.d; ++t) {
        if (!v.all_ones[t]) return false;
      }
      for (uint32_t t = 0; t < v.d; ++t) {
        if (v.bucket_read[t] && !v.flag_value[t]) return false;
      }
      return true;
    }
    if (opts_.deletion_mode == DeletionMode::kTombstone) {
      // True all-zero buckets (no tombstones) still prove "never inserted".
      for (uint32_t t = 0; t < v.d; ++t) {
        if (!v.bloom_nonzero[t]) return false;
      }
    }
    for (uint32_t t = 0; t < v.d; ++t) {
      if (v.bucket_read[t] && !v.flag_value[t]) return false;
    }
    return true;
  }

  /// Commits a Rehash-rebuilt table while optimistic readers may be
  /// probing this one (caller holds the aux stripe odd). Reader-visible
  /// storage — slots, stash flags and counters — is exchanged
  /// pointer-wise, so a racing reader sees the old or the new buffer but
  /// never a transient moved-from state, and the replaced epoch is parked
  /// in retired_ so lagging readers keep dereferencing live memory. The
  /// stats_/metrics_ heap objects stay identity-stable — a lagging reader
  /// flushes its tally through the pre-commit pointer after validation — so
  /// the rebuild's deltas are merged into them rather than replacing them
  /// (see McCuckooTable::CommitRebuildLockFree). NOTE: keep in sync with
  /// the member list — a member missed here keeps its pre-rehash value.
  void CommitRebuildLockFree(BlockedMcCuckooTable&& rebuilt) {
    slots_.swap(rebuilt.slots_);
    flags_.Swap(rebuilt.flags_);
    counters_.SwapStorage(rebuilt.counters_);
    retired_.push_back(RetiredStorage{std::move(rebuilt.slots_),
                                      std::move(rebuilt.flags_),
                                      std::move(rebuilt.counters_)});
    opts_ = rebuilt.opts_;
    family_ = std::move(rebuilt.family_);
    *stats_ += *rebuilt.stats_;
    metrics_->MergeFrom(*rebuilt.metrics_);
    latency_->MergeFrom(*rebuilt.latency_);
    trace_ = std::move(rebuilt.trace_);
    // spans_ deliberately keeps this table's ring — it is a lifetime
    // timeline; the rehash span lands in it right after this commit.
    kick_history_.AdoptStorage(std::move(rebuilt.kick_history_));
    stash_ = std::move(rebuilt.stash_);
    rng_ = std::move(rebuilt.rng_);
    probe_simd_ = rebuilt.probe_simd_;
    // The rebuild just freed space, so any dead-end streak is stale.
    bfs_throttle_ = {};
    size_ = rebuilt.size_;
    first_collision_items_ = rebuilt.first_collision_items_;
    first_failure_items_ = rebuilt.first_failure_items_;
    redundant_writes_ = rebuilt.redundant_writes_;
    stale_stash_flag_keys_ = rebuilt.stale_stash_flag_keys_;
    forced_rehash_events_ = rebuilt.forced_rehash_events_;
    ++rehash_epoch_;
    // seq_, seq_open_, retired_ and growth_ deliberately keep this table's
    // values (the policy's backoff/reseed state spans rebuilds).
  }

  TableOptions opts_;
  Family family_;
  std::vector<Slot> slots_;
  // One stash flag per bucket (off-chip). Packed uint64_t words, not
  // std::vector<bool>: the word holding a flag is prefetchable alongside
  // the bucket's slot lines, and rebuilds scan set bits a word at a time.
  BitArray flags_;
  // Heap-allocated so the pointer handed to CounterArray /
  // KickHistory stays valid when the table is moved (Rehash,
  // snapshot loading, factory returns).
  mutable std::unique_ptr<AccessStats> stats_ =
      std::make_unique<AccessStats>();
  // Same pattern for the metrics: atomics are immovable, the unique_ptr
  // keeps the table movable and lets const read paths record.
  mutable std::unique_ptr<TableMetrics> metrics_ =
      std::make_unique<TableMetrics>();
  // Sampled op-latency recorder: heap-held for the same identity-stability
  // reason as metrics_ (const read paths record through it across Rehash
  // commits). Sample period applied from opts_ in the constructor body.
  mutable std::unique_ptr<LatencyRecorder> latency_ =
      std::make_unique<LatencyRecorder>();
  TraceRecorder trace_;
  // Growth/rehash/dead-end/spill timeline (writer-exclusion threading
  // model, like trace_).
  SpanRecorder spans_;
  // Per-bucket headers: slot tags + counters + tombstones in one aligned
  // 16-byte block per bucket (see bucket_header.h).
  BucketHeaderArray counters_;
  // Resolved TableOptions::probe — true when lookups use the vector
  // tag-match kernel. Same results and charges either way.
  bool probe_simd_;
  KickHistory kick_history_;
  Stash<Key, Value> stash_;
  Xoshiro256 rng_;
  BfsThrottle bfs_throttle_;
  // Optimistic-read support: non-owning version array attached by the
  // concurrent wrapper (null in single-threaded use) and the set of
  // stripes the in-flight mutation holds odd until its SeqFlush().
  SeqlockArray* seq_ = nullptr;
  SeqlockWriterSet seq_open_;
  // Storage epochs retired by Rehash while a seqlock was attached. Never
  // accessed again (the CounterArray's stats pointer inside is dangling by
  // design) — held only so lagging optimistic readers dereference live
  // memory; freed when the table is destroyed.
  struct RetiredStorage {
    std::vector<Slot> slots;
    BitArray flags;
    BucketHeaderArray counters;
  };
  std::vector<RetiredStorage> retired_;

  size_t size_ = 0;
  uint64_t first_collision_items_ = 0;
  uint64_t first_failure_items_ = 0;
  uint64_t redundant_writes_ = 0;
  uint64_t stale_stash_flag_keys_ = 0;
  uint64_t forced_rehash_events_ = 0;
  // Auto-growth state. Declared last and preserved across both Rehash
  // commit paths: the policy tracks this table's lifetime (backoff,
  // reseed quota), not any single geometry's.
  GrowthPolicy growth_;
  uint64_t rehash_epoch_ = 0;
};

}  // namespace mccuckoo

#endif  // MCCUCKOO_CORE_BLOCKED_MCCUCKOO_TABLE_H_
