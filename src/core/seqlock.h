// Seqlock-striped version array for optimistic lock-free reads (§III.H).
//
// The OneWriterManyReaders wrapper's shared_mutex makes every reader pay at
// least two atomic RMWs on one shared cache line — at high reader counts
// the lock word ping-pongs and caps throughput well below what the
// mutation-free FindNoStats path could sustain. The observation behind the
// optimistic protocol (Kuszmaul's kick-out eviction analysis, PAPERS.md) is
// that a kick chain is the *only* window in which a live key is absent from
// every bucket, so a reader that can detect "a writer touched one of my
// candidate buckets while I probed" may otherwise run with zero locks.
//
// This header provides the detection machinery:
//
//  * SeqlockArray — a power-of-two array of 32-bit version cells
//    ("stripes"), cache-line aligned, plus one auxiliary cell covering
//    whole-table state (the stash, exclusive maintenance). Buckets map to
//    stripes by low-bit masking; the mapping is independent of the table
//    size, so a Rehash can keep the same array. Odd version = a mutation of
//    some bucket in that stripe is in flight.
//  * SeqlockWriterSet — the writer-side open set. A multi-copy mutation
//    touches several buckets (all copies of a key, every bucket of a kick
//    chain), and the table must hold *all* of them odd until the operation
//    reaches a consistent state: bumping each bucket's stripe only around
//    its own store would let a reader validate cleanly between two chain
//    steps and miss the in-flight key. Open() is idempotent per stripe so
//    choke points can call it unconditionally; CloseAll() publishes at the
//    operation's commit point.
//  * SeqlockReadCritical — RAII ThreadSanitizer annotation scope for the
//    data reads of an optimistic attempt. The reads intentionally race
//    writer stores and are discarded on version mismatch; the runtime
//    AnnotateIgnoreReadsBegin/End pair (exported by libtsan) covers inlined
//    callees, which no_sanitize attributes do not.
//
// Memory ordering follows the standard seqlock recipe (Boehm, "Can
// seqlocks get along with programming language memory models?"):
//   writer:  v -> v+1 (relaxed store), release fence, data stores,
//            v+1 -> v+2 (release store)
//   reader:  v1 = load(acquire), data loads, acquire fence,
//            v2 = load(relaxed), valid iff v1 == v2 and v1 is even.
// The data loads themselves are plain (formally racy, as in every practical
// seqlock); a reader only acts on them after validation, and values are
// staged in locals so torn reads never escape. Versions wrap at 2^32;
// validation is an equality check, so wraparound is only observable if a
// reader sleeps across exactly 2^31 operations on one stripe.

#ifndef MCCUCKOO_CORE_SEQLOCK_H_
#define MCCUCKOO_CORE_SEQLOCK_H_

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define MCCUCKOO_THREAD_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MCCUCKOO_THREAD_SANITIZER 1
#endif
#endif

#ifdef MCCUCKOO_THREAD_SANITIZER
extern "C" {
void AnnotateIgnoreReadsBegin(const char* file, int line);
void AnnotateIgnoreReadsEnd(const char* file, int line);
}
#endif

// GCC's -Wtsan (an error under -Werror) flags standalone atomic fences
// because ThreadSanitizer's happens-before model does not track them. The
// racy loads those fences order are already excluded from race detection
// (SeqlockReadCritical), and the writer side is single-threaded under the
// wrapper's writer mutex, so the untracked fences cannot produce false
// negatives here — suppress the diagnostic rather than weaken the protocol.
#if defined(MCCUCKOO_THREAD_SANITIZER) && defined(__GNUC__) && \
    !defined(__clang__)
#define MCCUCKOO_PUSH_IGNORE_WTSAN \
  _Pragma("GCC diagnostic push") _Pragma("GCC diagnostic ignored \"-Wtsan\"")
#define MCCUCKOO_POP_IGNORE_WTSAN _Pragma("GCC diagnostic pop")
#else
#define MCCUCKOO_PUSH_IGNORE_WTSAN
#define MCCUCKOO_POP_IGNORE_WTSAN
#endif

namespace mccuckoo {

/// Outcome of one optimistic lookup attempt. kContended covers every case
/// where the attempt cannot be trusted — a writer was (or became) active in
/// a touched stripe, the probe needs the stash (whose unordered_map must
/// not be traversed racily), or no version array is attached — and the
/// caller retries or falls back to the shared lock.
enum class OptimisticResult : uint8_t { kHit, kMiss, kContended };

/// Reader policy of the concurrent wrappers: take the shared lock per read
/// (the paper's baseline design) or attempt seqlock-validated lock-free
/// reads first.
enum class ReadMode : uint8_t { kLocked, kOptimistic };

/// Striped seqlock version array. One writer per *stripe* at a time — either
/// the table-wide writer mutex of the single-writer wrappers, or ownership of
/// the congruent LockStripeArray stripe in the multi-writer wrappers — with
/// any number of concurrent readers. The non-RMW WriteBegin/WriteEnd bumps
/// stay valid under multiple writers precisely because the writer-lock
/// stripes partition buckets identically to these version stripes.
class SeqlockArray {
 public:
  /// Stripe-count cap: 1024 cells = 4 KB of versions, enough granularity
  /// that a writer invalidates ~0.1% of the key space per touched bucket.
  static constexpr size_t kMaxStripes = 1024;

  /// Stripe count for a bucket-count hint: min(next_pow2(buckets), cap).
  /// Public so sibling striped structures (LockStripeArray) can size
  /// themselves congruently — the multi-writer protocol requires the writer
  /// locks and the seqlock versions to partition buckets identically.
  static size_t StripesFor(size_t buckets) {
    const size_t stripes = std::bit_ceil(buckets == 0 ? size_t{1} : buckets);
    return stripes > kMaxStripes ? kMaxStripes : stripes;
  }

  /// Builds an array of min(next_pow2(buckets), kMaxStripes) stripes plus
  /// the auxiliary cell. `buckets` is a sizing hint only — the mask mapping
  /// stays valid for any bucket index.
  explicit SeqlockArray(size_t buckets = 1)
      // Count-construction builds the blocks in place (atomics cannot be
      // moved, so resize() would not compile); the vector is never resized
      // afterwards, and vector moves just steal the pointer.
      : mask_(StripesFor(buckets) - 1),
        blocks_((StripesFor(buckets) + 1 + kCellsPerBlock - 1) /
                kCellsPerBlock) {}

  SeqlockArray(SeqlockArray&&) = default;
  SeqlockArray& operator=(SeqlockArray&&) = default;
  SeqlockArray(const SeqlockArray&) = delete;
  SeqlockArray& operator=(const SeqlockArray&) = delete;

  size_t num_stripes() const { return mask_ + 1; }

  /// Stripe covering bucket index `bucket` (any non-negative index).
  size_t StripeOf(size_t bucket) const { return bucket & mask_; }

  /// The auxiliary stripe: whole-table state outside the bucket array
  /// (stash membership, exclusive maintenance). Readers validate it on
  /// every attempt.
  size_t aux_stripe() const { return mask_ + 1; }

  static bool IsWriting(uint32_t version) { return (version & 1) != 0; }

  /// Reader step 1: record a stripe's version before touching its data.
  uint32_t ReadBegin(size_t stripe) const {
    return Cell(stripe).load(std::memory_order_acquire);
  }

  /// Reader step 2: after the data loads, check that every recorded stripe
  /// is unchanged (and was even to begin with — callers reject odd versions
  /// at ReadBegin). One acquire fence orders all data loads before the
  /// re-reads.
  MCCUCKOO_PUSH_IGNORE_WTSAN
  bool Validate(const size_t* stripes, const uint32_t* versions,
                size_t n) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      if (Cell(stripes[i]).load(std::memory_order_relaxed) != versions[i]) {
        return false;
      }
    }
    return true;
  }

  /// Writer: marks a stripe as mutation-in-flight (even -> odd). The
  /// release fence keeps the odd store ahead of the data stores that
  /// follow. Single-writer: no RMW needed.
  void WriteBegin(size_t stripe) {
    auto& c = Cell(stripe);
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }
  MCCUCKOO_POP_IGNORE_WTSAN

  /// Writer: publishes a stripe (odd -> even); the release store orders
  /// every prior data store before the new version.
  void WriteEnd(size_t stripe) {
    auto& c = Cell(stripe);
    assert(IsWriting(c.load(std::memory_order_relaxed)));
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  }

  /// Current raw version of a stripe (tests/debugging).
  uint32_t Version(size_t stripe) const {
    return Cell(stripe).load(std::memory_order_relaxed);
  }

  /// Test hook: plants a raw version (e.g. near UINT32_MAX to exercise
  /// wraparound). Must not be used while readers are active.
  void TestSetVersion(size_t stripe, uint32_t version) {
    Cell(stripe).store(version, std::memory_order_relaxed);
  }

 private:
  // Cells live in cache-line-aligned blocks: the array start never
  // straddles a line, and 16 cells share one line (readers touch d + 1
  // scattered cells; per-cell padding would cost 64 KB for no gain with a
  // single writer).
  static constexpr size_t kCellsPerBlock = 16;

  struct alignas(64) CellBlock {
    std::atomic<uint32_t> v[kCellsPerBlock];
    CellBlock() {
      for (auto& c : v) c.store(0, std::memory_order_relaxed);
    }
  };

  std::atomic<uint32_t>& Cell(size_t i) {
    return blocks_[i / kCellsPerBlock].v[i % kCellsPerBlock];
  }
  const std::atomic<uint32_t>& Cell(size_t i) const {
    return blocks_[i / kCellsPerBlock].v[i % kCellsPerBlock];
  }

  size_t mask_ = 0;
  std::vector<CellBlock> blocks_;
};

/// Writer-side open set: the stripes held odd by the operation in flight.
/// One mutation can touch a bucket several times (place, then set its
/// counter) and many buckets (every copy, every chain step); Open() bumps
/// each stripe exactly once and CloseAll() publishes them together at the
/// operation's consistent commit point.
class SeqlockWriterSet {
 public:
  void Open(SeqlockArray& arr, size_t stripe) {
    for (size_t i = 0; i < inline_n_; ++i) {
      if (inline_[i] == stripe) return;
    }
    for (size_t s : spill_) {
      if (s == stripe) return;
    }
    arr.WriteBegin(stripe);
    if (inline_n_ < kInline) {
      inline_[inline_n_++] = stripe;
    } else {
      spill_.push_back(stripe);
    }
  }

  void CloseAll(SeqlockArray& arr) {
    for (size_t i = 0; i < inline_n_; ++i) arr.WriteEnd(inline_[i]);
    for (size_t s : spill_) arr.WriteEnd(s);
    inline_n_ = 0;
    spill_.clear();
  }

  bool empty() const { return inline_n_ == 0 && spill_.empty(); }
  size_t size() const { return inline_n_ + spill_.size(); }

 private:
  // Inline storage keeps the per-operation writer sets of the multi-writer
  // paths (constructed fresh each op) off the heap; long rehash-time window
  // sets spill into the vector, which stays unallocated until then.
  static constexpr size_t kInline = 16;
  size_t inline_[kInline];
  size_t inline_n_ = 0;
  std::vector<size_t> spill_;
};

/// RAII TSan scope for the (intentionally racy, validated-after) data loads
/// of an optimistic read attempt. No-op outside ThreadSanitizer builds.
class SeqlockReadCritical {
 public:
  SeqlockReadCritical() {
#ifdef MCCUCKOO_THREAD_SANITIZER
    AnnotateIgnoreReadsBegin(__FILE__, __LINE__);
#endif
  }
  ~SeqlockReadCritical() {
#ifdef MCCUCKOO_THREAD_SANITIZER
    AnnotateIgnoreReadsEnd(__FILE__, __LINE__);
#endif
  }
  SeqlockReadCritical(const SeqlockReadCritical&) = delete;
  SeqlockReadCritical& operator=(const SeqlockReadCritical&) = delete;
};

}  // namespace mccuckoo

#endif  // MCCUCKOO_CORE_SEQLOCK_H_
