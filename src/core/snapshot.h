// Table snapshots: save a table's configuration and live items to a byte
// stream and rebuild an equivalent table from it.
//
// The snapshot stores the *logical* contents (options + key/value pairs),
// not the physical layout: Load re-inserts every item, so the rebuilt table
// holds exactly the same mapping while its internal placement may differ
// (fresh RNG state). This keeps the format trivial, versionable and valid
// across layout changes. Works with any of the four tables (anything with
// options(), TotalItems(), ForEachItem() and Insert()); keys and values
// must be trivially copyable for the binary encoding.

#ifndef MCCUCKOO_CORE_SNAPSHOT_H_
#define MCCUCKOO_CORE_SNAPSHOT_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <type_traits>

#include "src/common/status.h"
#include "src/core/config.h"

namespace mccuckoo {

namespace snapshot_internal {

inline constexpr uint64_t kMagic = 0x4D43434B534E4150ull;  // "MCCKSNAP"
inline constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(is);
}

inline void WriteOptions(std::ostream& os, const TableOptions& o) {
  WritePod(os, o.num_hashes);
  WritePod(os, o.buckets_per_table);
  WritePod(os, o.slots_per_bucket);
  WritePod(os, o.maxloop);
  WritePod(os, o.seed);
  WritePod(os, static_cast<uint32_t>(o.deletion_mode));
  WritePod(os, static_cast<uint32_t>(o.eviction_policy));
  WritePod(os, o.kick_counter_bits);
  WritePod(os, o.stash_enabled);
  WritePod(os, static_cast<uint32_t>(o.stash_kind));
  WritePod(os, o.onchip_stash_capacity);
  WritePod(os, o.stash_screen_enabled);
  WritePod(os, o.lookup_pruning_enabled);
}

/// Decodes the options block. Raw integers destined for enum fields are
/// range-checked *before* the cast: a snapshot written by a newer version
/// (or a corrupt one) must yield a descriptive error, never an enum holding
/// an out-of-range value.
inline Status ReadOptions(std::istream& is, TableOptions* o) {
  uint32_t deletion = 0, eviction = 0, stash_kind = 0;
  bool ok = ReadPod(is, &o->num_hashes) &&
            ReadPod(is, &o->buckets_per_table) &&
            ReadPod(is, &o->slots_per_bucket) && ReadPod(is, &o->maxloop) &&
            ReadPod(is, &o->seed) && ReadPod(is, &deletion) &&
            ReadPod(is, &eviction) && ReadPod(is, &o->kick_counter_bits) &&
            ReadPod(is, &o->stash_enabled) && ReadPod(is, &stash_kind) &&
            ReadPod(is, &o->onchip_stash_capacity) &&
            ReadPod(is, &o->stash_screen_enabled) &&
            ReadPod(is, &o->lookup_pruning_enabled);
  if (!ok) return Status::InvalidArgument("snapshot options block truncated");
  if (deletion > 2) {
    return Status::InvalidArgument("snapshot deletion_mode out of range: " +
                                   std::to_string(deletion));
  }
  if (eviction > 3) {
    return Status::InvalidArgument("snapshot eviction_policy out of range: " +
                                   std::to_string(eviction));
  }
  if (stash_kind > 1) {
    return Status::InvalidArgument("snapshot stash_kind out of range: " +
                                   std::to_string(stash_kind));
  }
  o->deletion_mode = static_cast<DeletionMode>(deletion);
  o->eviction_policy = static_cast<EvictionPolicy>(eviction);
  o->stash_kind = static_cast<StashKind>(stash_kind);
  return Status::OK();
}

}  // namespace snapshot_internal

/// Writes `table`'s options and live items to `os`.
template <typename Table>
Status SaveSnapshot(const Table& table, std::ostream& os) {
  using Key = typename Table::KeyType;
  using Value = typename Table::ValueType;
  static_assert(std::is_trivially_copyable_v<Key> &&
                    std::is_trivially_copyable_v<Value>,
                "snapshot encoding requires trivially copyable key/value");
  namespace si = snapshot_internal;
  si::WritePod(os, si::kMagic);
  si::WritePod(os, si::kVersion);
  si::WriteOptions(os, table.options());
  si::WritePod(os, static_cast<uint64_t>(table.TotalItems()));
  table.ForEachItem([&os](const Key& k, const Value& v) {
    si::WritePod(os, k);
    si::WritePod(os, v);
  });
  if (!os) return Status::IOError("snapshot write failed");
  return Status::OK();
}

/// Rebuilds a table from a snapshot written by SaveSnapshot<Table>.
template <typename Table>
Result<Table> LoadSnapshot(std::istream& is) {
  using Key = typename Table::KeyType;
  using Value = typename Table::ValueType;
  namespace si = snapshot_internal;
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!si::ReadPod(is, &magic) || magic != si::kMagic) {
    return Status::InvalidArgument("not a McCuckoo snapshot");
  }
  if (!si::ReadPod(is, &version) || version != si::kVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  TableOptions options;
  if (Status s = si::ReadOptions(is, &options); !s.ok()) return s;
  Status s = options.Validate();
  if (!s.ok()) return s;
  uint64_t count = 0;
  if (!si::ReadPod(is, &count)) {
    return Status::InvalidArgument("corrupt snapshot item count");
  }
  // Create() rather than the constructor: table-specific screens (slot
  // counts, unsupported policies) must surface as a Status, not an abort.
  Result<Table> table_or = Table::Create(options);
  if (!table_or.ok()) return table_or.status();
  Table table = std::move(table_or).value();
  for (uint64_t i = 0; i < count; ++i) {
    Key k{};
    Value v{};
    if (!si::ReadPod(is, &k) || !si::ReadPod(is, &v)) {
      return Status::InvalidArgument("snapshot truncated at item " +
                                     std::to_string(i));
    }
    table.Insert(k, v);
  }
  return table;
}

}  // namespace mccuckoo

#endif  // MCCUCKOO_CORE_SNAPSHOT_H_
