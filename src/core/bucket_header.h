// Cache-conscious per-bucket headers and the tag-probe kernels over them.
//
// The paper's model charges one on-chip read per counter and one off-chip
// read per bucket; it says nothing about how the *software* artifact lays
// those bits out in DRAM. Pre-refactor, a lookup on the blocked table paid
// real cache misses far in excess of the model: the counters and tombstones
// lived in two separate packed-word allocations (two extra lines per
// candidate bucket), the stash flags in a third, and the key compare walked
// every occupied slot of every probed bucket.
//
// The BucketHeader collapses the per-bucket screening state into one
// 16-byte, 16-byte-aligned block:
//
//       byte  0..7   tag[s]  - 8-bit key fingerprint of slot s's occupant
//       byte  8..15  meta[s] - bits 0..2: copy counter (0..d, d <= 4)
//                              bit  3:    tombstone mark
//                              bits 4..7: zero (reserved)
//
// Slots past slots_per_bucket are never written and stay all-zero, so
// whole-word (SWAR) and whole-vector (SSE2/AVX2) reductions over the full
// 8 lanes are exact without masking the tail. One aligned 16-byte load
// answers "which slots can possibly hold this key" — the off-chip slot
// line is then touched only for slots whose tag matches AND whose counter
// is non-zero, which for a random probe is ~l/256 false positives.
//
// Everything here is layout + pure functions; the charged accessors that
// keep the paper's accounting bit-identical live in counter_array.h.

#ifndef MCCUCKOO_CORE_BUCKET_HEADER_H_
#define MCCUCKOO_CORE_BUCKET_HEADER_H_

#include <cstdint>
#include <cstring>

// Compile-time probe selection. SSE2 is the x86-64 baseline; builds for
// other ISAs (or -DMCCUCKOO_PORTABLE_PROBE=ON, which defines
// MCCUCKOO_DISABLE_SIMD_PROBE) fall back to the portable SWAR kernel,
// which the differential tests pin to identical results.
#if defined(__SSE2__) && !defined(MCCUCKOO_DISABLE_SIMD_PROBE)
#define MCCUCKOO_SIMD_PROBE_SSE2 1
#include <emmintrin.h>
#if defined(__AVX2__)
#define MCCUCKOO_SIMD_PROBE_AVX2 1
#include <immintrin.h>
#endif
#endif

namespace mccuckoo {

/// One bucket's screening state: 8 slot tags + 8 slot meta bytes. The
/// 16-byte size and alignment let an SSE2 register load the whole header
/// (aligned), guarantee a header never straddles a cache line, and pack
/// four headers per 64-byte line.
struct alignas(16) BucketHeader {
  uint8_t tag[8];   ///< Key fingerprints; valid only where counter > 0.
  uint8_t meta[8];  ///< Counter bits 0..2, tombstone bit 3, bits 4..7 zero.
};

static_assert(sizeof(BucketHeader) == 16,
              "BucketHeader must be exactly one SSE2 register");
static_assert(alignof(BucketHeader) == 16,
              "aligned 16-byte loads require 16-byte alignment");
static_assert(64 % sizeof(BucketHeader) == 0,
              "headers must tile cache lines without straddling");

/// Bit masks over a meta word (8 meta bytes read as one uint64).
inline constexpr uint64_t kHdrCounterRep = 0x0707070707070707ull;
inline constexpr uint64_t kHdrTombRep = 0x0808080808080808ull;
inline constexpr uint64_t kHdrByteRep = 0x0101010101010101ull;

/// Low 3 bits of each meta byte.
inline constexpr uint8_t kHdrCounterMask = 0x07;
/// Tombstone bit of a meta byte.
inline constexpr uint8_t kHdrTombBit = 0x08;

/// The meta word / tag word of a header as plain integers. memcpy keeps the
/// loads well-typed for UBSan; it compiles to a single mov.
inline uint64_t HdrMetaWord(const BucketHeader& h) {
  uint64_t w;
  std::memcpy(&w, h.meta, sizeof(w));
  return w;
}
inline uint64_t HdrTagWord(const BucketHeader& h) {
  uint64_t w;
  std::memcpy(&w, h.tag, sizeof(w));
  return w;
}

/// 0x01 repeated over the low `l` bytes — the meta word of a bucket whose
/// `l` real slots all hold counter 1 (tails are zero by construction).
inline constexpr uint64_t HdrAllOnesWord(uint32_t l) {
  return l >= 8 ? kHdrByteRep : ((uint64_t{1} << (8 * l)) - 1) & kHdrByteRep;
}

/// 0x80 in every byte of `x` that is zero; exact per byte (no borrow
/// artifacts, Hacker's Delight 6-2).
inline uint64_t HdrZeroBytes(uint64_t x) {
  constexpr uint64_t k7f = 0x7F7F7F7F7F7F7F7Full;
  const uint64_t nonzero = ((x & k7f) + k7f) | x;  // bit 7 set <=> byte != 0
  return ~nonzero & 0x8080808080808080ull;
}

/// Compresses a 0x00/0x80-per-byte mask to one bit per byte (bit s = byte
/// s non-zero). The multiply routes byte s's 0x80 to output bit 56 + s;
/// all partial products land on distinct bit positions, so no carries.
inline uint32_t HdrByteMaskToBits(uint64_t m80) {
  return static_cast<uint32_t>((m80 * 0x0002040810204081ull) >> 56);
}

/// Portable probe kernel: bitmask (bit s set) of slots whose tag equals
/// `tag` and whose counter is non-zero. Pure SWAR — this is the reference
/// the SIMD kernels are differentially tested against.
inline uint32_t TagMatchMaskScalar(const BucketHeader& h, uint8_t tag) {
  const uint64_t eq80 = HdrZeroBytes(HdrTagWord(h) ^ (kHdrByteRep * tag));
  const uint64_t empty80 = HdrZeroBytes(HdrMetaWord(h) & kHdrCounterRep);
  return HdrByteMaskToBits(eq80 & ~empty80);
}

#if defined(MCCUCKOO_SIMD_PROBE_SSE2)
/// SSE2 probe kernel: one aligned 16-byte load covers tags and meta; the
/// two movemask halves give tag-equality (bits 0..7) and counter-emptiness
/// (bits 8..15) in one pass.
inline uint32_t TagMatchMaskSse2(const BucketHeader& h, uint8_t tag) {
  const __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(&h));
  const __m128i eq =
      _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(tag)));
  const __m128i empty = _mm_cmpeq_epi8(
      _mm_and_si128(v, _mm_set1_epi8(kHdrCounterMask)), _mm_setzero_si128());
  const uint32_t eq_bits = static_cast<uint32_t>(_mm_movemask_epi8(eq));
  const uint32_t empty_bits = static_cast<uint32_t>(_mm_movemask_epi8(empty));
  return eq_bits & ~(empty_bits >> 8) & 0xFFu;
}
#endif  // MCCUCKOO_SIMD_PROBE_SSE2

#if defined(MCCUCKOO_SIMD_PROBE_AVX2)
/// AVX2 probe kernel: two candidate headers screened per 256-bit pass.
/// Used by the blocked table's lookup, which computes the match masks of
/// all d candidate buckets up front (good ILP; d is 2..4).
inline void TagMatchMask2Avx2(const BucketHeader& a, const BucketHeader& b,
                              uint8_t tag, uint32_t* mask_a,
                              uint32_t* mask_b) {
  const __m256i v = _mm256_inserti128_si256(
      _mm256_castsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(&a))),
      _mm_load_si128(reinterpret_cast<const __m128i*>(&b)), 1);
  const __m256i eq =
      _mm256_cmpeq_epi8(v, _mm256_set1_epi8(static_cast<char>(tag)));
  const __m256i empty =
      _mm256_cmpeq_epi8(_mm256_and_si256(v, _mm256_set1_epi8(kHdrCounterMask)),
                        _mm256_setzero_si256());
  const uint32_t eq_bits = static_cast<uint32_t>(_mm256_movemask_epi8(eq));
  const uint32_t empty_bits =
      static_cast<uint32_t>(_mm256_movemask_epi8(empty));
  const uint32_t live = eq_bits & ~(empty_bits >> 8);
  *mask_a = live & 0xFFu;
  *mask_b = (live >> 16) & 0xFFu;
}
#endif  // MCCUCKOO_SIMD_PROBE_AVX2

/// Match masks for all `d` candidate headers with the best kernel compiled
/// in (AVX2 pairs > SSE2 singles > scalar). Callers gate on the *runtime*
/// probe selection; this symbol always exists so the dispatch code needs
/// no preprocessor conditionals.
inline void SimdTagMatchMasks(const BucketHeader* const* h, uint32_t d,
                              uint8_t tag, uint32_t* out) {
#if defined(MCCUCKOO_SIMD_PROBE_AVX2)
  uint32_t t = 0;
  for (; t + 2 <= d; t += 2) {
    TagMatchMask2Avx2(*h[t], *h[t + 1], tag, &out[t], &out[t + 1]);
  }
  if (t < d) out[t] = TagMatchMaskSse2(*h[t], tag);
#elif defined(MCCUCKOO_SIMD_PROBE_SSE2)
  for (uint32_t t = 0; t < d; ++t) out[t] = TagMatchMaskSse2(*h[t], tag);
#else
  for (uint32_t t = 0; t < d; ++t) out[t] = TagMatchMaskScalar(*h[t], tag);
#endif
}

/// True when this binary carries a vector probe kernel.
inline constexpr bool kSimdProbeAvailable =
#if defined(MCCUCKOO_SIMD_PROBE_SSE2)
    true;
#else
    false;
#endif

/// Which probe kernel a table uses for tag screening. Chosen at
/// construction (TableOptions::probe) so one binary can run both variants
/// side by side — that is what the scalar-vs-SIMD differential tests and
/// the `.simd.` / `.scalar.` benchmark keys rely on.
enum class ProbeKind {
  kAuto,    ///< SIMD when compiled in, scalar otherwise (the default).
  kScalar,  ///< Force the portable SWAR kernel.
  kSimd,    ///< Require the vector kernel; Validate() rejects it when the
            ///< build carries none.
};

/// Resolves kAuto against what this binary was compiled with.
inline ProbeKind ResolveProbeKind(ProbeKind k) {
  if (k == ProbeKind::kAuto) {
    return kSimdProbeAvailable ? ProbeKind::kSimd : ProbeKind::kScalar;
  }
  return k;
}

/// Short stable name of the *resolved* kind ("simd" / "scalar"); bench
/// keys embed it so recorded numbers say which kernel produced them.
inline const char* ProbeKindToString(ProbeKind k) {
  switch (ResolveProbeKind(k)) {
    case ProbeKind::kSimd:   return "simd";
    case ProbeKind::kScalar: return "scalar";
    case ProbeKind::kAuto:   break;  // unreachable: ResolveProbeKind folds it
  }
  return "unknown";
}

}  // namespace mccuckoo

#endif  // MCCUCKOO_CORE_BUCKET_HEADER_H_
