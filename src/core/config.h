// Shared configuration and result types for the hash tables.

#ifndef MCCUCKOO_CORE_CONFIG_H_
#define MCCUCKOO_CORE_CONFIG_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/core/bucket_header.h"
#include "src/core/growth.h"
#include "src/hash/hash_family.h"

namespace mccuckoo {

/// How a table handles Erase(), chosen at construction (paper §III.B.3).
enum class DeletionMode {
  /// Erase() is a programming error. Lookups may use the strongest counter
  /// rules: any zero candidate counter proves the key was never inserted
  /// (Bloom property), and any counter > 1 on a missed lookup proves the key
  /// is not in the stash.
  kDisabled,
  /// Erase() resets the copies' counters to 0 (zero off-chip writes). The
  /// Bloom property is lost; zero-counter buckets are still skipped for
  /// reading, and stash screening falls back to the per-bucket flags
  /// actually read during the lookup (§III.F).
  kResetCounters,
  /// Erase() marks the copies' counters "deleted": treated as zero by
  /// insertion, as non-zero by lookup, so the Bloom property survives.
  /// Suited to rare deletions — tombstones never return to true zero.
  kTombstone,
};

/// How the eviction victim is chosen when a kick-out is unavoidable
/// (§III.D: "any existing collision resolving mechanisms such as
/// random-walk or MinCounter can be used").
enum class EvictionPolicy {
  /// Uniformly random victim among the candidates [28] — the paper's
  /// running example and the default.
  kRandomWalk,
  /// MinCounter [17]: a small on-chip kick-history counter per bucket;
  /// evict the bucket kicked least often (ties random). Spreads relocations
  /// away from "hot" buckets.
  kMinCounter,
  /// Breadth-first search for the shortest cuckoo path [3]. On the
  /// multi-copy tables the search is counter-aware: a bucket whose
  /// occupant holds a redundant copy (counter > 1) terminates the chain
  /// with a pure counter decrement — no relocation. Supported by
  /// CuckooTable, McCuckooTable and BlockedMcCuckooTable; BchtTable
  /// rejects it at Create().
  kBfs,
  /// Bubbling-up (arXiv 2501.02312): reserve headroom in the low-numbered
  /// sub-tables by placing fresh items as "high" as possible and cycling
  /// eviction deterministically through the levels, so displaced items
  /// drift toward the reserved headroom instead of random-walking.
  /// Supported by all four tables.
  kBubble,
};

/// Returns a short stable policy name ("random_walk", "min_counter", ...).
inline const char* EvictionPolicyToString(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kRandomWalk: return "random_walk";
    case EvictionPolicy::kMinCounter: return "min_counter";
    case EvictionPolicy::kBfs:        return "bfs";
    case EvictionPolicy::kBubble:     return "bubble";
  }
  return "unknown";
}

/// Where the overflow stash lives.
enum class StashKind {
  /// McCuckoo's contribution (§III.E): a large stash in abundant off-chip
  /// memory. Each probe costs one off-chip read, so the counter + flag
  /// screen matters; capacity is effectively unlimited.
  kOffchip,
  /// Classic CHS [22]: a tiny stash in on-chip memory, probed for free on
  /// every main-table miss but holding only a handful of items. Overruns
  /// beyond its capacity are counted as forced-rehash events (the items are
  /// still retained so no data is ever lost in this library).
  kOnchipChs,
};

/// Outcome of an insertion.
enum class InsertResult {
  /// The key settled in the main table (possibly after kick-outs).
  kInserted,
  /// The key already existed and its copies were updated (InsertOrAssign).
  kUpdated,
  /// The insertion chain hit maxloop; some item (the inserted key or a
  /// displaced victim) went to the stash. All keys remain findable.
  kStashed,
  /// As kStashed, but the caller configured stash_enabled = false; the item
  /// was still kept in the overflow area so no data is lost, but the caller
  /// asked to treat overflow as failure (e.g. to measure failure load).
  kFailed,
};

/// Returns a short stable name ("inserted", "stashed", ...).
inline const char* InsertResultToString(InsertResult r) {
  switch (r) {
    case InsertResult::kInserted: return "inserted";
    case InsertResult::kUpdated:  return "updated";
    case InsertResult::kStashed:  return "stashed";
    case InsertResult::kFailed:   return "failed";
  }
  return "unknown";
}

/// Construction options shared by all four table variants.
struct TableOptions {
  /// Number of hash functions / sub-tables (2..kMaxHashes). The paper uses 3.
  uint32_t num_hashes = 3;

  /// Buckets per sub-table. Total bucket count is num_hashes * this.
  uint64_t buckets_per_table = 1 << 16;

  /// Slots per bucket; 1 for the single-slot tables, 3 for the blocked
  /// tables in the paper.
  uint32_t slots_per_bucket = 1;

  /// Kick-out chain length bound before declaring insertion failure.
  uint32_t maxloop = 500;

  /// Master seed for the hash family and the eviction RNG.
  uint64_t seed = 0x5EEDC0DE;

  /// Deletion handling (see DeletionMode).
  DeletionMode deletion_mode = DeletionMode::kDisabled;

  /// Victim selection during kick-outs (see EvictionPolicy).
  EvictionPolicy eviction_policy = EvictionPolicy::kRandomWalk;

  /// Width of MinCounter's per-bucket kick-history counters (5 in [17]).
  uint32_t kick_counter_bits = 5;

  /// If false, insertion-chain failures are reported as kFailed instead of
  /// kStashed (overflow items are still retained and findable).
  bool stash_enabled = true;

  /// Stash placement (see StashKind). The multi-copy tables default to the
  /// paper's off-chip stash; the sim façade gives baselines kOnchipChs.
  StashKind stash_kind = StashKind::kOffchip;

  /// Capacity of the on-chip CHS stash (4 suffices for ~95% load whp [24]).
  uint32_t onchip_stash_capacity = 4;

  /// Ablation: use the on-chip counter rules and off-chip flags to screen
  /// stash probes. Off = probe the stash on every main-table miss.
  bool stash_screen_enabled = true;

  /// Ablation: use the partition rules (paper §III.B.2) to skip candidate
  /// buckets during lookup. Off = read every non-empty candidate.
  bool lookup_pruning_enabled = true;

  /// Auto-growth engine knobs (src/core/growth.h). Disabled by default so
  /// fixed-size experiments stay reproducible.
  GrowthConfig growth;

  /// 1-in-N sampling period for the wall-clock op-latency recorder
  /// (src/obs/latency_recorder.h), rounded up to a power of two; 0
  /// disables sampling (no clock reads on any op). Ignored under
  /// -DMCCUCKOO_NO_METRICS.
  uint32_t latency_sample_period = 32;

  /// Which tag-probe kernel the lookup paths use (src/core/bucket_header.h).
  /// kAuto resolves to SIMD when the build carries a vector kernel and the
  /// portable SWAR kernel otherwise; forcing kScalar lets one binary run
  /// both variants for differential testing and the `.scalar.` bench keys.
  /// Purely a software-execution knob: probe results and AccessStats are
  /// identical across kinds, so it is not part of the snapshot format.
  ProbeKind probe = ProbeKind::kAuto;

  /// Validates ranges; returns InvalidArgument describing the problem.
  Status Validate() const {
    if (num_hashes < 2 || num_hashes > kMaxHashes) {
      return Status::InvalidArgument("num_hashes must be in [2, 4]");
    }
    if (buckets_per_table == 0) {
      return Status::InvalidArgument("buckets_per_table must be positive");
    }
    if (slots_per_bucket == 0 || slots_per_bucket > 8) {
      return Status::InvalidArgument("slots_per_bucket must be in [1, 8]");
    }
    if (kick_counter_bits < 1 || kick_counter_bits > 16) {
      return Status::InvalidArgument("kick_counter_bits must be in [1, 16]");
    }
    if (probe == ProbeKind::kSimd && !kSimdProbeAvailable) {
      return Status::InvalidArgument(
          "probe=kSimd but this build has no SIMD probe kernel "
          "(non-SSE2 target or MCCUCKOO_PORTABLE_PROBE)");
    }
    if (Status s = growth.Validate(); !s.ok()) return s;
    return Status::OK();
  }

  /// Total key capacity (slots across all sub-tables).
  uint64_t capacity() const {
    return static_cast<uint64_t>(num_hashes) * buckets_per_table *
           slots_per_bucket;
  }
};

}  // namespace mccuckoo

#endif  // MCCUCKOO_CORE_CONFIG_H_
