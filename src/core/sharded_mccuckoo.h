// Sharded concurrent front-end over the multi-copy tables.
//
// OneWriterManyReaders (paper §III.H) serializes all writers behind one
// readers-writer lock, so write throughput cannot scale. This wrapper
// hash-partitions the key space over N independent shards — each a complete
// table (own hash family, counters, stash) behind its own shared_mutex — so
// writers to different shards proceed in parallel and readers only contend
// with writers of their own shard.
//
// Routing uses the top bits of a dedicated routing hash. That hash MUST be
// decorrelated from the bucket hashes: the tables reduce hashes to bucket
// indices with the multiply-shift reduction (FastRange64), which consumes
// the *high* bits, so reusing a bucket hash for routing would make every
// key of a shard land in the same region of its table. A separate routing
// seed (plus per-shard table seeds) keeps the two partitions independent.
//
// Batched operations group the batch by destination shard first and then
// process one shard at a time under a single lock span, preserving the
// per-shard prefetch pipeline (the underlying FindBatchNoStats/InsertBatch)
// and never holding more than one shard lock at once — so no lock-order
// deadlock is possible against concurrent batches.
//
// Auto-growth (options.growth.enabled) is per shard: each shard's table
// runs its own GrowthPolicy inside Insert, under that shard's unique_lock
// — a hot shard grows without pausing the others, and with optimistic
// reads the growing shard's rehash commits under its aux seqlock stripe
// so that shard's readers never block either. Aggregate metrics sum the
// per-shard growth counters; growth_suppressed counts degraded shards.
//
// WriteMode::kMultiWriter additionally runs writers concurrently *within*
// one shard: writers take the shard mutex SHARED and serialize per bucket
// through the shard's striped locks (src/core/lock_stripes.h), growth
// escalates to the exclusive side plus a full stripe drain, and — since the
// shared shard lock no longer excludes writers — readers fall back to the
// table's FindStriped (candidate-stripe locks + rehash-epoch revalidation)
// instead of the shared-lock FindNoStats. Demoted to kSingleWriter when the
// table type has no concurrent write path.

#ifndef MCCUCKOO_CORE_SHARDED_MCCUCKOO_H_
#define MCCUCKOO_CORE_SHARDED_MCCUCKOO_H_

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/bits.h"
#include "src/common/rng.h"
#include "src/core/config.h"
#include "src/core/lock_stripes.h"
#include "src/core/seqlock.h"
#include "src/mem/access_stats.h"
#include "src/obs/metrics.h"

namespace mccuckoo {

/// Hash-partitioned sharded wrapper; Table is McCuckooTable or
/// BlockedMcCuckooTable (anything with FindNoStats + the batch API).
template <typename Table>
class ShardedMcCuckoo {
 public:
  using Key = typename Table::KeyType;
  using Value = typename Table::ValueType;
  using Hasher = typename Table::HasherType;

  /// Whether optimistic reads are even possible for these types (torn
  /// reads of non-trivially-copyable records would be UB before
  /// validation could discard them).
  static constexpr bool kOptimisticCapable =
      std::is_trivially_copyable_v<Key> && std::is_trivially_copyable_v<Value>;

  /// Whether the table type exposes the striped-lock concurrent write path
  /// (McCuckooTable does; tables without it demote kMultiWriter requests).
  static constexpr bool kMultiWriterCapable =
      requires(Table& t, const Key& k, const Value& v, std::mutex& m,
               bool* w) {
        t.ConcurrentInsert(k, v, m, w);
        t.ConcurrentInsertOrAssign(k, v, m, w);
        t.ConcurrentErase(k);
        t.FindStriped(k, nullptr);
      };

  /// Optimistic attempts per read before the shared-lock fallback (see
  /// OneWriterManyReaders::kMaxOptimisticSpins).
  static constexpr int kMaxOptimisticSpins = 3;

  /// Builds `num_shards` (a power of two, >= 1) shards. `options` describes
  /// the *aggregate* table: each shard gets ~1/num_shards of the buckets,
  /// its own decorrelated seed, and the same policy knobs. `read_mode`
  /// opts every shard into seqlock-validated lock-free reads; it demotes
  /// to kLocked when the key/value types cannot support them. `write_mode`
  /// opts every shard into concurrent writers under its striped locks; it
  /// demotes to kSingleWriter when the table type has no concurrent path.
  ShardedMcCuckoo(const TableOptions& options, size_t num_shards,
                  ReadMode read_mode = ReadMode::kLocked,
                  WriteMode write_mode = WriteMode::kSingleWriter)
      : shard_bits_(FloorLog2(num_shards)),
        route_seed_(SplitMix64(options.seed ^ 0x9E3779B97F4A7C15ull)),
        read_mode_(kOptimisticCapable ? read_mode : ReadMode::kLocked),
        write_mode_(kMultiWriterCapable ? write_mode
                                        : WriteMode::kSingleWriter) {
    assert(num_shards >= 1 && (num_shards & (num_shards - 1)) == 0);
    shards_.reserve(num_shards);
    TableOptions shard_opts = options;
    shard_opts.buckets_per_table =
        (options.buckets_per_table + num_shards - 1) / num_shards;
    for (size_t i = 0; i < num_shards; ++i) {
      shard_opts.seed =
          SplitMix64(options.seed + 0xA24BAED4963EE407ull * (i + 1));
      shards_.push_back(std::make_unique<Shard>(shard_opts, read_mode_));
      if constexpr (kMultiWriterCapable) {
        if (write_mode_ == WriteMode::kMultiWriter) {
          Shard& s = *shards_.back();
          // Concurrent writers also need the seqlock attached: their
          // counter/bucket mutations must land inside version windows even
          // when readers are on the striped-lock path.
          s.table.AttachSeqlock(&s.seq);
          s.table.AttachLockStripes(&s.locks);
        }
      }
    }
  }

  size_t num_shards() const { return shards_.size(); }

  /// The reader policy actually in effect (post type-capability demotion).
  ReadMode read_mode() const { return read_mode_; }

  /// The writer policy actually in effect (post table-capability demotion).
  WriteMode write_mode() const { return write_mode_; }

  /// Shard index of `key` (top shard_bits_ of the routing hash).
  size_t ShardOf(const Key& key) const {
    if (shard_bits_ == 0) return 0;
    return static_cast<size_t>(hasher_(key, route_seed_) >>
                               (64 - shard_bits_));
  }

  // --- Scalar operations --------------------------------------------------

  InsertResult Insert(const Key& key, const Value& value) {
    Shard& s = *shards_[ShardOf(key)];
    if constexpr (kMultiWriterCapable) {
      if (write_mode_ == WriteMode::kMultiWriter) {
        bool wants_growth = false;
        InsertResult r;
        {
          std::shared_lock lock(s.mutex);
          r = s.table.ConcurrentInsert(key, value, s.growth_mu,
                                       &wants_growth);
        }
        if (wants_growth) GrowShardExclusive(s);
        return r;
      }
    }
    std::unique_lock lock(s.mutex);
    return s.table.Insert(key, value);
  }

  InsertResult InsertOrAssign(const Key& key, const Value& value) {
    Shard& s = *shards_[ShardOf(key)];
    if constexpr (kMultiWriterCapable) {
      if (write_mode_ == WriteMode::kMultiWriter) {
        bool wants_growth = false;
        InsertResult r;
        {
          std::shared_lock lock(s.mutex);
          r = s.table.ConcurrentInsertOrAssign(key, value, s.growth_mu,
                                               &wants_growth);
        }
        if (wants_growth) GrowShardExclusive(s);
        return r;
      }
    }
    std::unique_lock lock(s.mutex);
    return s.table.InsertOrAssign(key, value);
  }

  bool Erase(const Key& key) {
    Shard& s = *shards_[ShardOf(key)];
    if constexpr (kMultiWriterCapable) {
      if (write_mode_ == WriteMode::kMultiWriter) {
        std::shared_lock lock(s.mutex);
        return s.table.ConcurrentErase(key);
      }
    }
    std::unique_lock lock(s.mutex);
    return s.table.Erase(key);
  }

  /// Mutation-free lookup. kLocked: shared lock + FindNoStats. kOptimistic:
  /// bounded seqlock-validated lock-free attempts against the key's shard,
  /// then the same shared-lock fallback (readers only ever contend with
  /// their own shard's writer either way).
  bool Find(const Key& key, Value* out = nullptr) const {
    const Shard& s = *shards_[ShardOf(key)];
    if constexpr (kOptimisticCapable) {
      if (read_mode_ == ReadMode::kOptimistic) {
        for (int attempt = 0; attempt <= kMaxOptimisticSpins; ++attempt) {
          const OptimisticResult r = s.table.TryFindOptimistic(key, out);
          if (r == OptimisticResult::kHit) return true;
          if (r == OptimisticResult::kMiss) return false;
          if constexpr (kMetricsEnabled) s.optimistic_retries.Inc();
          if (attempt < kMaxOptimisticSpins) std::this_thread::yield();
        }
        if constexpr (kMetricsEnabled) s.optimistic_fallbacks.Inc();
      }
    }
    if constexpr (kMultiWriterCapable) {
      if (write_mode_ == WriteMode::kMultiWriter) {
        // The shared shard lock no longer excludes writers; the striped
        // fallback waits only for writers on this key's own candidates.
        return s.table.FindStriped(key, out);
      }
    }
    std::shared_lock lock(s.mutex);
    return s.table.FindNoStats(key, out);
  }

  bool Contains(const Key& key) const { return Find(key, nullptr); }

  // --- Batched operations -------------------------------------------------

  /// Batched lookup: groups keys by shard, then runs each shard's group
  /// through its prefetch-pipelined FindBatchNoStats under one shared-lock
  /// span. out[i]/found[i] line up with keys[i]; returns the hit count.
  size_t FindBatch(std::span<const Key> keys, Value* out, bool* found) const {
    const ShardGroups g = GroupByShard(keys);
    size_t hits = 0;
    std::vector<Key> shard_keys;
    std::vector<Value> shard_vals;
    std::vector<uint8_t> shard_found;
    for (size_t s = 0; s < shards_.size(); ++s) {
      const size_t n = g.CountOf(s);
      if (n == 0) continue;
      shard_keys.clear();
      for (size_t j = g.begin[s]; j < g.begin[s] + n; ++j) {
        shard_keys.push_back(keys[g.order[j]]);
      }
      shard_vals.resize(n);
      shard_found.resize(n);
      {
        const Shard& sh = *shards_[s];
        const std::span<const Key> group(shard_keys.data(), n);
        Value* group_vals = out != nullptr ? shard_vals.data() : nullptr;
        bool* group_found = reinterpret_cast<bool*>(shard_found.data());
        bool done = false;
        if constexpr (kOptimisticCapable) {
          if (read_mode_ == ReadMode::kOptimistic) {
            hits += OptimisticGroupFind(sh, group, group_vals, group_found);
            done = true;
          }
        }
        if constexpr (kMultiWriterCapable) {
          if (!done && write_mode_ == WriteMode::kMultiWriter) {
            hits += StripedGroupFind(sh, group, group_vals, group_found);
            done = true;
          }
        }
        if (!done) {
          std::shared_lock lock(sh.mutex);
          hits += sh.table.FindBatchNoStats(group, group_vals, group_found);
        }
      }
      for (size_t j = 0; j < n; ++j) {
        const size_t i = g.order[g.begin[s] + j];
        if (found != nullptr) found[i] = shard_found[j] != 0;
        if (out != nullptr && shard_found[j] != 0) out[i] = shard_vals[j];
      }
    }
    return hits;
  }

  size_t ContainsBatch(std::span<const Key> keys, bool* found) const {
    return FindBatch(keys, nullptr, found);
  }

  /// Batched insert: groups keys by shard, one exclusive-lock span per
  /// shard, delegating to the shard table's pipelined InsertBatch.
  /// results[i] (optional) lines up with keys[i].
  void InsertBatch(std::span<const Key> keys, std::span<const Value> values,
                   InsertResult* results = nullptr) {
    assert(keys.size() == values.size());
    const ShardGroups g = GroupByShard(keys);
    std::vector<Key> shard_keys;
    std::vector<Value> shard_vals;
    std::vector<InsertResult> shard_results;
    for (size_t s = 0; s < shards_.size(); ++s) {
      const size_t n = g.CountOf(s);
      if (n == 0) continue;
      shard_keys.clear();
      shard_vals.clear();
      for (size_t j = g.begin[s]; j < g.begin[s] + n; ++j) {
        shard_keys.push_back(keys[g.order[j]]);
        shard_vals.push_back(values[g.order[j]]);
      }
      shard_results.resize(n);
      {
        Shard& sh = *shards_[s];
        bool handled = false;
        if constexpr (kMultiWriterCapable) {
          if (write_mode_ == WriteMode::kMultiWriter) {
            // Concurrent inserts under one shared-lock span; growth
            // requests are coalesced and served after the span (the
            // single-writer batch pipeline assumes writer exclusion).
            bool wants_growth = false;
            {
              std::shared_lock lock(sh.mutex);
              for (size_t j = 0; j < n; ++j) {
                bool wg = false;
                shard_results[j] = sh.table.ConcurrentInsert(
                    shard_keys[j], shard_vals[j], sh.growth_mu, &wg);
                wants_growth = wants_growth || wg;
              }
            }
            if (wants_growth) GrowShardExclusive(sh);
            handled = true;
          }
        }
        if (!handled) {
          std::unique_lock lock(sh.mutex);
          sh.table.InsertBatch(std::span<const Key>(shard_keys.data(), n),
                               std::span<const Value>(shard_vals.data(), n),
                               shard_results.data());
        }
      }
      if (results != nullptr) {
        for (size_t j = 0; j < n; ++j) {
          results[g.order[g.begin[s] + j]] = shard_results[j];
        }
      }
    }
  }

  // --- Merged introspection -----------------------------------------------

  size_t size() const {
    size_t total = 0;
    for (const auto& s : shards_) {
      std::shared_lock lock(s->mutex);
      total += s->table.size();
    }
    return total;
  }

  size_t stash_size() const {
    size_t total = 0;
    for (const auto& s : shards_) {
      std::shared_lock lock(s->mutex);
      total += ShardStashSize(*s);
    }
    return total;
  }

  size_t TotalItems() const {
    size_t total = 0;
    for (const auto& s : shards_) {
      std::shared_lock lock(s->mutex);
      total += s->table.size() + ShardStashSize(*s);
    }
    return total;
  }

  uint64_t capacity() const {
    // Capacity is no longer a construction-time constant: a shard's
    // auto-growth rehash (inside Insert, under the shard's unique_lock)
    // changes its geometry, so reading it requires the shard lock too.
    uint64_t total = 0;
    for (const auto& s : shards_) {
      std::shared_lock lock(s->mutex);
      total += s->table.capacity();
    }
    return total;
  }

  double load_factor() const {
    return static_cast<double>(TotalItems()) /
           static_cast<double>(capacity());
  }

  /// Component-wise sum of all shards' writer-side access statistics.
  AccessStats stats_snapshot() const {
    AccessStats merged;
    for (const auto& s : shards_) {
      std::shared_lock lock(s->mutex);
      merged += s->table.stats();
    }
    return merged;
  }

  /// Component-wise sum of all shards' metrics (histograms merge bucket-
  /// wise; occupancy/capacity gauges sum to the aggregate view). Takes each
  /// shard's lock exclusively: in multi-writer mode the shared side no
  /// longer excludes writers, and exact totals need a quiesced shard.
  MetricsSnapshot metrics_snapshot() const {
    MetricsSnapshot merged;
    for (const auto& s : shards_) {
      std::unique_lock lock(s->mutex);
      merged += s->table.SnapshotMetrics();
      merged.optimistic_retries += s->optimistic_retries.Value();
      merged.optimistic_fallbacks += s->optimistic_fallbacks.Value();
    }
    return merged;
  }

  /// One shard's metrics snapshot (testing / per-shard dashboards).
  MetricsSnapshot shard_metrics_snapshot(size_t shard) const {
    const Shard& s = *shards_[shard];
    std::unique_lock lock(s.mutex);
    MetricsSnapshot snap = s.table.SnapshotMetrics();
    snap.optimistic_retries = s.optimistic_retries.Value();
    snap.optimistic_fallbacks = s.optimistic_fallbacks.Value();
    return snap;
  }

  /// Exclusive access to one shard's table (setup/validation only). In
  /// optimistic mode the shard's aux stripe is held for `fn`'s duration,
  /// forcing lock-free readers onto the shared lock while `fn` may
  /// restructure storage (e.g. Rehash); in multi-writer mode every stripe
  /// is additionally drained so striped readers quiesce too.
  template <typename Fn>
  auto WithExclusiveShard(size_t shard, Fn&& fn) {
    Shard& s = *shards_[shard];
    std::unique_lock lock(s.mutex);
    std::optional<LockStripeDrain> drain;
    if (write_mode_ == WriteMode::kMultiWriter) drain.emplace(s.locks);
    struct AuxGuard {
      SeqlockArray* seq;
      explicit AuxGuard(SeqlockArray* s_) : seq(s_) {
        if (seq != nullptr) seq->WriteBegin(seq->aux_stripe());
      }
      ~AuxGuard() {
        if (seq != nullptr) seq->WriteEnd(seq->aux_stripe());
      }
    } guard(read_mode_ == ReadMode::kOptimistic ||
                    write_mode_ == WriteMode::kMultiWriter
                ? &s.seq
                : nullptr);
    return std::forward<Fn>(fn)(s.table);
  }

 private:
  // Padded to its own cache line(s) so one shard's lock traffic does not
  // false-share with its neighbours. Heap-allocated behind unique_ptr, so
  // &seq stays stable for the table's attached pointer.
  struct alignas(64) Shard {
    Shard(const TableOptions& options, ReadMode mode)
        : table(options),
          seq(table.seqlock_domain()),
          locks(table.seqlock_domain()) {
      if (mode == ReadMode::kOptimistic) table.AttachSeqlock(&seq);
      // In WriteMode::kMultiWriter the wrapper additionally attaches seq
      // and locks (the attach hook only exists on capable table types).
    }
    mutable std::shared_mutex mutex;
    Table table;
    SeqlockArray seq;
    // Striped writer locks + growth serialization for kMultiWriter shards
    // (constructed always — a few cache lines — attached only when used).
    LockStripeArray locks;
    std::mutex growth_mu;
    mutable Counter optimistic_retries;
    mutable Counter optimistic_fallbacks;
  };

  /// Stash size of one shard under its (at least shared) lock: exact in
  /// single-writer mode, an annotated estimate under concurrent writers.
  size_t ShardStashSize(const Shard& s) const {
    if constexpr (kMultiWriterCapable) {
      if (write_mode_ == WriteMode::kMultiWriter) {
        return s.table.ApproxStashSize();
      }
    }
    return s.table.stash_size();
  }

  /// Per-key striped lookup for one shard's batch group (multi-writer
  /// mode: the shared shard lock would not exclude writers, so the batch
  /// pipeline's unlocked probes are off the table).
  size_t StripedGroupFind(const Shard& sh, std::span<const Key> keys,
                          Value* out, bool* found) const {
    size_t hits = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
      Value* o = out != nullptr ? out + i : nullptr;
      const bool hit = sh.table.FindStriped(keys[i], o);
      if (found != nullptr) found[i] = hit;
      if (hit) ++hits;
    }
    return hits;
  }

  /// Escalates one shard to full exclusivity (unique shard lock + stripe
  /// drain) and runs its growth engine; a no-op if a competing writer's
  /// escalation already grew the shard (the policy re-decides inside).
  void GrowShardExclusive(Shard& s) {
    std::unique_lock lock(s.mutex);
    LockStripeDrain drain(s.locks);
    s.table.MaybeGrowExclusive();
  }

  /// Stable grouping of batch positions by destination shard:
  /// order[begin[s] .. begin[s] + CountOf(s)) are the indices routed to s,
  /// in their original batch order.
  struct ShardGroups {
    std::vector<size_t> order;  // batch indices, grouped by shard
    std::vector<size_t> begin;  // per-shard start offset into order
    size_t CountOf(size_t s) const {
      const size_t end = s + 1 < begin.size() ? begin[s + 1] : order.size();
      return end - begin[s];
    }
  };

  /// Optimistic path for one shard's batch group: validates per
  /// kBatchTile-sized tile (all-or-nothing), retrying lost tiles and
  /// re-running persistent losers under that shard's shared lock. Only
  /// instantiated for optimistic-capable types.
  size_t OptimisticGroupFind(const Shard& sh, std::span<const Key> keys,
                             Value* out, bool* found) const {
    size_t hits = 0;
    for (size_t base = 0; base < keys.size(); base += Table::kBatchTile) {
      const size_t n = std::min(Table::kBatchTile, keys.size() - base);
      const std::span<const Key> tile = keys.subspan(base, n);
      Value* tile_out = out != nullptr ? out + base : nullptr;
      bool* tile_found = found != nullptr ? found + base : nullptr;
      int64_t r = -1;
      for (int attempt = 0; attempt <= kMaxOptimisticSpins; ++attempt) {
        r = sh.table.TryFindBatchOptimistic(tile, tile_out, tile_found);
        if (r >= 0) break;
        if constexpr (kMetricsEnabled) sh.optimistic_retries.Inc();
        if (attempt < kMaxOptimisticSpins) std::this_thread::yield();
      }
      if (r < 0) {
        if constexpr (kMetricsEnabled) sh.optimistic_fallbacks.Inc();
        bool striped = false;
        if constexpr (kMultiWriterCapable) {
          // Under multi-writer the shared shard lock no longer excludes
          // writers, so the locked batch fallback would race them (the
          // stash especially); fall back per key through the stripes.
          if (write_mode_ == WriteMode::kMultiWriter) {
            r = static_cast<int64_t>(
                StripedGroupFind(sh, tile, tile_out, tile_found));
            striped = true;
          }
        }
        if (!striped) {
          std::shared_lock lock(sh.mutex);
          r = static_cast<int64_t>(
              sh.table.FindBatchNoStats(tile, tile_out, tile_found));
        }
      }
      hits += static_cast<size_t>(r);
    }
    return hits;
  }

  ShardGroups GroupByShard(std::span<const Key> keys) const {
    const size_t n_shards = shards_.size();
    std::vector<size_t> shard_of(keys.size());
    std::vector<size_t> counts(n_shards, 0);
    for (size_t i = 0; i < keys.size(); ++i) {
      shard_of[i] = ShardOf(keys[i]);
      ++counts[shard_of[i]];
    }
    ShardGroups g;
    g.begin.resize(n_shards);
    size_t off = 0;
    for (size_t s = 0; s < n_shards; ++s) {
      g.begin[s] = off;
      off += counts[s];
    }
    g.order.resize(keys.size());
    std::vector<size_t> cursor = g.begin;
    for (size_t i = 0; i < keys.size(); ++i) {
      g.order[cursor[shard_of[i]]++] = i;
    }
    return g;
  }

  static size_t FloorLog2(size_t n) {
    size_t b = 0;
    while (n > 1) {
      n >>= 1;
      ++b;
    }
    return b;
  }

  size_t shard_bits_;
  uint64_t route_seed_;
  ReadMode read_mode_;
  WriteMode write_mode_;
  Hasher hasher_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mccuckoo

#endif  // MCCUCKOO_CORE_SHARDED_MCCUCKOO_H_
