// Victim-selection policies for the kick-out path.
//
// The paper's collision-resolution section (§III.D) notes that *any*
// existing mechanism — random-walk [28] or MinCounter [17] — can drive
// McCuckoo's relocation, with the on-chip copy counters pinpointing usable
// buckets at every step. Random-walk is the paper's running example; this
// header adds the MinCounter policy (a per-bucket kick-history counter,
// evict the "coldest" bucket) for all four tables, and the classic BFS
// shortest-path search [3] for the single-copy baseline.

#ifndef MCCUCKOO_CORE_EVICTION_H_
#define MCCUCKOO_CORE_EVICTION_H_

#include <cstdint>

#include "src/common/packed_array.h"
#include "src/common/rng.h"
#include "src/hash/hash_family.h"
#include "src/mem/access_stats.h"

namespace mccuckoo {

/// MinCounter's per-bucket kick-history array: `bits`-wide saturating
/// counters (5 bits in [17]) living on-chip next to the copy counters.
class KickHistory {
 public:
  /// Disabled history (random-walk tables carry this empty object).
  KickHistory() = default;

  /// Enabled history over `buckets` buckets. `stats` (may be null) receives
  /// on-chip access charges and must outlive the object.
  KickHistory(size_t buckets, uint32_t bits, AccessStats* stats)
      : counters_(buckets, bits), stats_(stats), enabled_(true) {}

  bool enabled() const { return enabled_; }

  /// Kick count of `bucket` (charged as one on-chip read).
  uint64_t Get(size_t bucket) const {
    if (stats_ != nullptr) ++stats_->onchip_reads;
    return counters_.Get(bucket);
  }

  /// Bytes of modeled on-chip memory (0 when disabled).
  size_t memory_bytes() const { return counters_.memory_bytes(); }

  /// Takes `other`'s counters and enabled flag but keeps this object's
  /// stats sink (Rehash commit under live optimistic readers keeps the
  /// owning table's AccessStats identity-stable).
  void AdoptStorage(KickHistory&& other) {
    counters_ = std::move(other.counters_);
    enabled_ = other.enabled_;
  }

  /// Saturating increment after `bucket`'s occupant is evicted.
  void Increment(size_t bucket) {
    if (stats_ != nullptr) ++stats_->onchip_writes;
    const uint64_t v = counters_.Get(bucket);
    if (v < counters_.max_value()) counters_.Set(bucket, v + 1);
  }

 private:
  PackedArray counters_;
  AccessStats* stats_ = nullptr;
  bool enabled_ = false;
};

/// Picks the eviction target among `d` candidate buckets, excluding
/// `exclude` (the bucket the in-hand item was just evicted from; pass
/// SIZE_MAX for none). With an enabled KickHistory this is MinCounter's
/// choice — the not-so-"hot" bucket, ties broken uniformly; otherwise a
/// uniform random pick. Returns the candidate slot index t.
template <typename Candidates>
uint32_t PickVictim(const Candidates& buckets, uint32_t d, size_t exclude,
                    const KickHistory& history, Xoshiro256& rng) {
  if (!history.enabled()) {
    uint32_t t = static_cast<uint32_t>(rng.Below(d));
    if (buckets[t] == exclude) {
      t = (t + 1 + static_cast<uint32_t>(rng.Below(d - 1))) % d;
    }
    return t;
  }
  uint32_t best[kMaxHashes];
  uint32_t n_best = 0;
  uint64_t best_count = ~0ull;
  for (uint32_t t = 0; t < d; ++t) {
    if (buckets[t] == exclude) continue;
    const uint64_t c = history.Get(buckets[t]);
    if (c < best_count) {
      best_count = c;
      n_best = 0;
    }
    if (c == best_count) best[n_best++] = t;
  }
  return best[rng.Below(n_best)];
}

}  // namespace mccuckoo

#endif  // MCCUCKOO_CORE_EVICTION_H_
