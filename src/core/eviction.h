// Victim-selection policies for the kick-out path.
//
// The paper's collision-resolution section (§III.D) notes that *any*
// existing mechanism — random-walk [28] or MinCounter [17] — can drive
// McCuckoo's relocation, with the on-chip copy counters pinpointing usable
// buckets at every step. Random-walk is the paper's running example; this
// header adds the MinCounter policy (a per-bucket kick-history counter,
// evict the "coldest" bucket) for all four tables, the deterministic
// level-cycling victim choice behind the bubbling-up policy
// (arXiv 2501.02312), and a shared breadth-first shortest-path engine [3]
// that each table drives with its own notion of "terminal" node — an empty
// bucket for the single-copy baseline, an empty *or redundant-copy*
// (counter > 1) bucket for the multi-copy tables, where eviction is a pure
// on-chip counter decrement.

#ifndef MCCUCKOO_CORE_EVICTION_H_
#define MCCUCKOO_CORE_EVICTION_H_

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/common/packed_array.h"
#include "src/common/rng.h"
#include "src/hash/hash_family.h"
#include "src/mem/access_stats.h"

namespace mccuckoo {

/// MinCounter's per-bucket kick-history array: `bits`-wide saturating
/// counters (5 bits in [17]) living on-chip next to the copy counters.
class KickHistory {
 public:
  /// Disabled history (random-walk tables carry this empty object).
  KickHistory() = default;

  /// Enabled history over `buckets` buckets. `stats` (may be null) receives
  /// on-chip access charges and must outlive the object.
  KickHistory(size_t buckets, uint32_t bits, AccessStats* stats)
      : counters_(buckets, bits), stats_(stats), enabled_(true) {}

  bool enabled() const { return enabled_; }

  /// Kick count of `bucket` (charged as one on-chip read).
  uint64_t Get(size_t bucket) const {
    if (stats_ != nullptr) ++stats_->onchip_reads;
    return counters_.Get(bucket);
  }

  /// Bytes of modeled on-chip memory (0 when disabled).
  size_t memory_bytes() const { return counters_.memory_bytes(); }

  /// Takes `other`'s counters and enabled flag but keeps this object's
  /// stats sink (Rehash commit under live optimistic readers keeps the
  /// owning table's AccessStats identity-stable).
  void AdoptStorage(KickHistory&& other) {
    counters_ = std::move(other.counters_);
    enabled_ = other.enabled_;
  }

  /// Saturating increment after `bucket`'s occupant is evicted.
  void Increment(size_t bucket) {
    if (stats_ != nullptr) ++stats_->onchip_writes;
    const uint64_t v = counters_.Get(bucket);
    if (v < counters_.max_value()) counters_.Set(bucket, v + 1);
  }

 private:
  PackedArray counters_;
  AccessStats* stats_ = nullptr;
  bool enabled_ = false;
};

/// Picks the eviction target among `d` candidate buckets, excluding
/// `exclude` (the bucket the in-hand item was just evicted from; pass
/// SIZE_MAX for none). With an enabled KickHistory this is MinCounter's
/// choice — the not-so-"hot" bucket, ties broken uniformly; otherwise a
/// uniform random pick. Returns the candidate slot index t.
template <typename Candidates>
uint32_t PickVictim(const Candidates& buckets, uint32_t d, size_t exclude,
                    const KickHistory& history, Xoshiro256& rng) {
  if (!history.enabled()) {
    uint32_t t = static_cast<uint32_t>(rng.Below(d));
    // d == 1 leaves no alternative to the excluded bucket (and Below(0)
    // would divide by zero): keep the single candidate.
    if (buckets[t] == exclude && d > 1) {
      t = (t + 1 + static_cast<uint32_t>(rng.Below(d - 1))) % d;
    }
    return t;
  }
  uint32_t best[kMaxHashes];
  uint32_t n_best = 0;
  uint64_t best_count = ~0ull;
  for (uint32_t t = 0; t < d; ++t) {
    if (buckets[t] == exclude) continue;
    const uint64_t c = history.Get(buckets[t]);
    if (c < best_count) {
      best_count = c;
      n_best = 0;
    }
    if (c == best_count) best[n_best++] = t;
  }
  if (n_best == 0) return 0;  // d == 1 and the only candidate is excluded
  return best[rng.Below(n_best)];
}

/// Bubbling-up victim choice (arXiv 2501.02312): instead of a random pick,
/// eviction cycles deterministically through the levels — an item displaced
/// from level `from_level` (-1 for the freshly inserted item) evicts at
/// level (from_level + 1) % d, so chains sweep "upward" through the
/// sub-tables and displaced items drift toward the headroom the placement
/// rule reserves in the low levels. Skips the bucket the in-hand item was
/// just evicted from when an alternative exists.
template <typename Candidates>
uint32_t PickBubbleVictim(const Candidates& buckets, uint32_t d,
                          size_t exclude, int32_t from_level) {
  uint32_t t = static_cast<uint32_t>(from_level + 1) % d;
  if (buckets[t] == exclude && d > 1) t = (t + 1) % d;
  return t;
}

// --- Shared breadth-first path search ------------------------------------

/// Result of one BfsFindPath() search. On success `node` holds the global
/// ids of the interior chain root..last (every one occupied by a sole
/// copy) and `terminal` the id that ends it (empty, or redundant-copy for
/// the multi-copy tables); items shift backward terminal-first, then the
/// new key lands in node.front(). `nodes_expanded` counts the interior
/// nodes whose occupant was read to generate children — the search-effort
/// signal the growth policy and metrics consume.
struct BfsPathResult {
  std::vector<uint64_t> node;
  uint64_t terminal = 0;
  bool found = false;
  uint32_t nodes_expanded = 0;
};

/// Node-expansion budget for one BFS search. `maxloop` bounds the random
/// walk's *relocations*; reusing it verbatim as the BFS frontier bound
/// would make every beyond-threshold insert pay maxloop occupant reads
/// before stashing — exactly the wall-clock collapse BFS exists to fix.
/// Because BFS explores breadth-first, a frontier of a few dozen nodes
/// already covers every path the walk could realistically commit (the
/// observed shortest chains at 90% load are 1-3 relocations), so capping
/// the budget keeps below-threshold success intact while letting doomed
/// inserts fail in ~kBfsMaxNodes on-chip-guided reads.
inline constexpr uint32_t kBfsMaxNodes = 48;

inline uint32_t BfsNodeBudget(uint32_t maxloop) {
  return maxloop < kBfsMaxNodes ? maxloop : kBfsMaxNodes;
}

/// Adaptive dead-end throttle for BFS insertion. Failed searches mean the
/// reachable region around the probe keys is saturated; spending the full
/// node budget on every further insert just multiplies the cost of an
/// outcome that is already known. The throttle is two-stage: any dead end
/// drops the next search to `kProbeBudget` nodes (at high load successes
/// and failures interleave, and the shortest successful chains sit well
/// inside that budget), and `kDeepTrigger` consecutive dead ends — the
/// deep-saturation regime where successes have become rare — cut it to
/// `kDeepProbeBudget`. Probes still notice when space opens up (free and
/// redundant-copy terminals sit at depth 1-2 once erases or growth free
/// room — the first probe that succeeds restores the full budget). The
/// throttle never changes *what* is inserted, only how long a doomed
/// search runs before stashing.
struct BfsThrottle {
  static constexpr uint32_t kDeepTrigger = 8;
  static constexpr uint32_t kProbeBudget = 16;
  static constexpr uint32_t kDeepProbeBudget = 4;

  uint32_t streak = 0;

  uint32_t Budget(uint32_t full) const {
    const uint32_t cap = streak >= kDeepTrigger ? kDeepProbeBudget
                         : streak >= 1          ? kProbeBudget
                                                : full;
    return cap < full ? cap : full;
  }
  void Observe(bool found) { streak = found ? 0 : streak + 1; }
};

/// Breadth-first search for the shortest eviction path [3], shared by all
/// tables that support EvictionPolicy::kBfs. Node ids are opaque (the
/// single-slot tables pass bucket indices, the blocked table slot
/// indices). The search starts from `roots` (deduplicated, all assumed
/// non-terminal) and repeatedly invokes
///
///   expand(id, emit) -> std::optional-like pair (found, terminal_id)
///
/// which must inspect `id`'s occupant, call `emit(child_id)` for every
/// non-terminal alternate, and return a terminal id as soon as it sees
/// one. The engine deduplicates children, bounds the frontier to
/// `max_nodes` ids, and reconstructs the root..id chain on success. No
/// table state is mutated during the search: a failed search leaves the
/// table untouched, which is what keeps the multi-copy stash screen's
/// all-ones invariant intact on the failure path.
template <typename ExpandFn>
BfsPathResult BfsFindPath(const uint64_t* roots, uint32_t n_roots,
                          size_t max_nodes, ExpandFn&& expand) {
  struct Node {
    uint64_t id;
    int32_t parent;  // index into nodes, -1 for roots
  };
  BfsPathResult out;
  // The common search at load <= 95% expands a handful of nodes, so the
  // hot path must stay allocation-light: a small inline node buffer and
  // duplicate detection by linear scan (the ids live contiguously in
  // `nodes`, so scanning them is cheaper than hashing until the frontier
  // gets genuinely large — which only happens on near-dead-end searches).
  std::vector<Node> nodes;
  nodes.reserve(std::min<size_t>(max_nodes, 64));
  auto enqueued = [&](uint64_t id) {
    for (const Node& n : nodes) {
      if (n.id == id) return true;
    }
    return false;
  };
  for (uint32_t i = 0; i < n_roots && nodes.size() < max_nodes; ++i) {
    if (!enqueued(roots[i])) nodes.push_back({roots[i], -1});
  }
  for (size_t head = 0; head < nodes.size(); ++head) {
    ++out.nodes_expanded;
    bool found_terminal = false;
    uint64_t terminal = 0;
    expand(
        nodes[head].id,
        [&](uint64_t child) {
          if (nodes.size() >= max_nodes) return;
          if (!enqueued(child)) {
            nodes.push_back({child, static_cast<int32_t>(head)});
          }
        },
        [&](uint64_t id) {
          found_terminal = true;
          terminal = id;
        });
    if (found_terminal) {
      out.found = true;
      out.terminal = terminal;
      for (int32_t n = static_cast<int32_t>(head); n >= 0;
           n = nodes[n].parent) {
        out.node.push_back(nodes[n].id);
      }
      std::reverse(out.node.begin(), out.node.end());
      return out;
    }
  }
  return out;
}

}  // namespace mccuckoo

#endif  // MCCUCKOO_CORE_EVICTION_H_
