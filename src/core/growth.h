// Load-adaptive auto-growth policy for the hash tables.
//
// The paper treats the table size as fixed and absorbs insertion failures
// into the off-chip stash (§III.E); a long-lived deployment instead wants
// the table to *grow itself* before the stash degrades into a linear
// overflow list — the standard remedy in production cuckoo stores (MemC3,
// Fan et al., NSDI 2013). The mechanism already exists: Rehash() rebuilds
// into a larger bucket count and, when a seqlock is attached, commits
// safely under live optimistic readers. This header supplies the *policy*
// around it:
//
//  * Triggers. Growth fires on any of three pressure signals, checked
//    after every insertion:
//      - load factor above `max_load_factor` (the target band's ceiling);
//      - stash occupancy above `stash_soft_limit` (each stashed item costs
//        a charged off-chip probe on the lookups that reach it);
//      - a streak of `pressure_streak_limit` consecutive "hard" inserts
//        (a stash spill, or a kick chain that ran at least half of
//        maxloop) — the leading indicator that the current geometry is
//        nearly saturated even when the load factor still looks healthy.
//  * Seed rotation. A pathological key set (or simple bad luck) can choke
//    a table well below its nominal capacity. When pressure fires without
//    the load-factor ceiling, the policy first retries the *same* size
//    under a freshly rotated hash seed, up to `max_reseeds_per_size`
//    times, before conceding that the table is genuinely full.
//  * Exponential backoff. Every committed or failed attempt starts a
//    cooldown measured in insertions; the window doubles after each
//    reseed or failure (capped at `backoff_max_inserts`) so a key set
//    that defeats every seed cannot cause a rehash storm. A successful
//    capacity grow resets the window.
//  * Graceful degradation. When growth is disabled, the size cap is hit,
//    or the rebuild allocation fails, the policy reports kSuppressed: the
//    table keeps absorbing inserts into the stash exactly as the paper
//    prescribes, and surfaces the state through the `growth_suppressed`
//    metrics gauge instead of erroring.
//
// The policy itself is pure bookkeeping — it never touches a table. The
// tables feed it ObserveInsert() from their insert paths, ask Decide()
// whether to act, and report the outcome back via OnRehashSuccess() /
// OnRehashFailure(). Keeping it table-agnostic makes it unit-testable
// without building a table (growth_soak_test.cc exercises both).

#ifndef MCCUCKOO_CORE_GROWTH_H_
#define MCCUCKOO_CORE_GROWTH_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace mccuckoo {

/// Auto-growth knobs, embedded in TableOptions as `growth`. Disabled by
/// default: the paper's experiments measure fixed-size tables, and growth
/// must be an explicit opt-in for them to stay reproducible.
struct GrowthConfig {
  /// Master switch. Off: the table never rehashes on its own; pressure
  /// that would have triggered growth raises the growth_suppressed gauge.
  bool enabled = false;

  /// Load-factor ceiling (TotalItems / capacity) that triggers a capacity
  /// grow. 0.85 leaves the random walk enough slack that chains stay
  /// short; the post-grow floor is max_load_factor / growth_factor.
  double max_load_factor = 0.85;

  /// Bucket-count multiplier per capacity grow (> 1).
  double growth_factor = 2.0;

  /// Stashed items tolerated before growth is triggered.
  uint64_t stash_soft_limit = 8;

  /// Consecutive hard inserts (stash spill or chain >= maxloop/2) that
  /// trigger growth.
  uint32_t pressure_streak_limit = 8;

  /// Seed rotations attempted at the current size before growing anyway.
  uint32_t max_reseeds_per_size = 1;

  /// Hard size cap per sub-table; at the cap the policy suppresses
  /// instead of growing.
  uint64_t max_buckets_per_table = uint64_t{1} << 32;

  /// Initial cooldown after a rehash attempt, in insertions.
  uint64_t backoff_initial_inserts = 64;

  /// Cooldown ceiling for the exponential backoff.
  uint64_t backoff_max_inserts = uint64_t{1} << 20;

  Status Validate() const {
    if (!(max_load_factor > 0.0 && max_load_factor <= 1.0)) {
      return Status::InvalidArgument(
          "growth.max_load_factor must be in (0, 1]");
    }
    if (!(growth_factor > 1.0)) {
      return Status::InvalidArgument("growth.growth_factor must exceed 1");
    }
    if (pressure_streak_limit == 0) {
      return Status::InvalidArgument(
          "growth.pressure_streak_limit must be positive");
    }
    if (max_buckets_per_table == 0) {
      return Status::InvalidArgument(
          "growth.max_buckets_per_table must be positive");
    }
    if (backoff_initial_inserts == 0 ||
        backoff_initial_inserts > backoff_max_inserts) {
      return Status::InvalidArgument(
          "growth backoff window must satisfy 0 < initial <= max");
    }
    return Status::OK();
  }
};

/// What the policy wants done after an insertion.
enum class GrowthAction : uint8_t {
  kNone,        ///< No pressure (or still cooling down): do nothing.
  kGrow,        ///< Rehash to `new_buckets_per_table` under a fresh seed.
  kReseed,      ///< Rehash at the current size under a rotated seed.
  kSuppressed,  ///< Pressure exists but growth cannot act (disabled or at
                ///< the size cap): degrade to the stash and raise the gauge.
};

struct GrowthDecision {
  GrowthAction action = GrowthAction::kNone;
  uint64_t new_buckets_per_table = 0;  ///< Valid for kGrow / kReseed.
};

/// Occupancy snapshot a table hands to Decide().
struct GrowthInputs {
  uint64_t total_items = 0;         ///< Live keys, main table + stash.
  uint64_t capacity_slots = 0;      ///< Total slots.
  uint64_t stash_items = 0;         ///< Keys currently stashed.
  uint64_t buckets_per_table = 0;   ///< Current geometry.
};

/// The state machine. One instance per table; mutations happen only under
/// the owning table's writer exclusion, so no atomics are needed.
class GrowthPolicy {
 public:
  GrowthPolicy() = default;
  explicit GrowthPolicy(const GrowthConfig& config) : cfg_(config) {}

  const GrowthConfig& config() const { return cfg_; }

  /// Feeds one insertion outcome into the pressure tracker. `overflowed`
  /// is true when the insert spilled to the stash (kStashed/kFailed); a
  /// chain of at least maxloop/2 also counts as a hard insert. BFS-driven
  /// tables additionally report the search effort: a search that expanded
  /// at least half its node budget (`2 * search_nodes >= search_budget`)
  /// is a near-dead-end and counts as hard even when the path it finally
  /// found (the relocation chain) was short — under BFS the chain length
  /// stays small right up to saturation, so raw chain length is no longer
  /// the leading pressure indicator.
  void ObserveInsert(bool overflowed, uint32_t chain_len, uint32_t maxloop,
                     uint32_t search_nodes = 0, uint32_t search_budget = 0) {
    ++inserts_since_attempt_;
    const bool hard =
        overflowed || (chain_len > 0 && 2 * chain_len >= maxloop) ||
        (search_budget > 0 && 2 * search_nodes >= search_budget);
    pressure_streak_ = hard ? pressure_streak_ + 1 : 0;
  }

  /// Evaluates the triggers against the table's current occupancy. Cheap
  /// enough to call after every insertion (a handful of compares).
  GrowthDecision Decide(const GrowthInputs& in) {
    const bool over_load =
        in.capacity_slots > 0 &&
        static_cast<double>(in.total_items) >
            cfg_.max_load_factor * static_cast<double>(in.capacity_slots);
    const bool over_stash = in.stash_items > cfg_.stash_soft_limit;
    const bool over_streak = pressure_streak_ >= cfg_.pressure_streak_limit;
    if (!over_load && !over_stash && !over_streak) return {};
    if (!cfg_.enabled) {
      suppressed_ = true;
      return {GrowthAction::kSuppressed, 0};
    }
    if (attempts_ > 0 && inserts_since_attempt_ < backoff_window_) return {};
    // Pressure without the load-factor ceiling smells like a bad seed, not
    // a full table: rotate first, grow once rotations are spent.
    if (!over_load && reseeds_at_size_ < cfg_.max_reseeds_per_size) {
      return {GrowthAction::kReseed, in.buckets_per_table};
    }
    const uint64_t target = NextBucketCount(in.buckets_per_table);
    if (target <= in.buckets_per_table) {
      suppressed_ = true;  // at the size cap
      return {GrowthAction::kSuppressed, 0};
    }
    return {GrowthAction::kGrow, target};
  }

  /// Rotates the seed for the next rehash (monotone across the policy's
  /// lifetime, so a reseed never replays an already-defeated seed).
  uint64_t NextSeed(uint64_t current_seed) {
    return SplitMix64(current_seed ^
                      (0x9E3779B97F4A7C15ull * ++seed_rotations_));
  }

  /// A Rehash committed. Grows reset the reseed quota and the backoff;
  /// reseeds consume quota and double the backoff (the same keys are
  /// about to contend with a new seed of unknown quality).
  void OnRehashSuccess(GrowthAction action) {
    ++attempts_;
    inserts_since_attempt_ = 0;
    pressure_streak_ = 0;
    suppressed_ = false;
    if (action == GrowthAction::kReseed) {
      ++reseeds_at_size_;
      backoff_window_ = NextBackoff();
    } else {
      reseeds_at_size_ = 0;
      backoff_window_ = cfg_.backoff_initial_inserts;
    }
  }

  /// A Rehash attempt failed (validation or allocation): back off and
  /// degrade to the stash until the window passes.
  void OnRehashFailure() {
    ++attempts_;
    inserts_since_attempt_ = 0;
    pressure_streak_ = 0;
    suppressed_ = true;
    backoff_window_ = NextBackoff();
  }

  // Introspection (tests / diagnostics).
  bool suppressed() const { return suppressed_; }
  uint32_t pressure_streak() const { return pressure_streak_; }
  uint32_t reseeds_at_size() const { return reseeds_at_size_; }
  uint64_t attempts() const { return attempts_; }
  uint64_t backoff_window() const { return backoff_window_; }
  uint64_t seed_rotations() const { return seed_rotations_; }

 private:
  uint64_t NextBackoff() const {
    const uint64_t base =
        backoff_window_ > 0 ? backoff_window_ : cfg_.backoff_initial_inserts;
    return base >= cfg_.backoff_max_inserts / 2 ? cfg_.backoff_max_inserts
                                                : base * 2;
  }

  uint64_t NextBucketCount(uint64_t buckets) const {
    const double scaled = static_cast<double>(buckets) * cfg_.growth_factor;
    uint64_t target = scaled >= static_cast<double>(cfg_.max_buckets_per_table)
                          ? cfg_.max_buckets_per_table
                          : static_cast<uint64_t>(scaled);
    if (target <= buckets) target = buckets + 1;  // growth_factor ~1+eps
    return target > cfg_.max_buckets_per_table ? buckets : target;
  }

  GrowthConfig cfg_;
  uint32_t pressure_streak_ = 0;
  uint32_t reseeds_at_size_ = 0;
  uint64_t attempts_ = 0;
  uint64_t inserts_since_attempt_ = 0;
  uint64_t backoff_window_ = 0;
  uint64_t seed_rotations_ = 0;
  bool suppressed_ = false;
};

}  // namespace mccuckoo

#endif  // MCCUCKOO_CORE_GROWTH_H_
