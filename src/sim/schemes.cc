#include "src/sim/schemes.h"

#include <cstdio>
#include <cstdlib>

#include "src/baseline/bcht_table.h"
#include "src/baseline/cuckoo_table.h"
#include "src/common/bits.h"
#include "src/core/blocked_mccuckoo_table.h"
#include "src/core/mccuckoo_table.h"

namespace mccuckoo {

namespace {

// Adapts any of the four concrete tables to the SchemeTable interface.
template <typename Table>
class SchemeAdapter final : public SchemeTable {
 public:
  explicit SchemeAdapter(const TableOptions& options) : table_(options) {}

  InsertResult Insert(uint64_t key, uint64_t value) override {
    return table_.Insert(key, value);
  }
  InsertResult InsertOrAssign(uint64_t key, uint64_t value) override {
    return table_.InsertOrAssign(key, value);
  }
  bool Find(uint64_t key, uint64_t* out) const override {
    return table_.Find(key, out);
  }
  bool Erase(uint64_t key) override { return table_.Erase(key); }

  size_t FindBatch(std::span<const uint64_t> keys, uint64_t* out,
                   bool* found) const override {
    return table_.FindBatch(keys, out, found);
  }
  size_t ContainsBatch(std::span<const uint64_t> keys,
                       bool* found) const override {
    return table_.ContainsBatch(keys, found);
  }
  void InsertBatch(std::span<const uint64_t> keys,
                   std::span<const uint64_t> values,
                   InsertResult* results) override {
    table_.InsertBatch(keys, values, results);
  }

  size_t size() const override { return table_.size(); }
  size_t stash_size() const override { return table_.stash_size(); }
  size_t TotalItems() const override { return table_.TotalItems(); }
  uint64_t capacity() const override { return table_.capacity(); }
  double load_factor() const override { return table_.load_factor(); }

  const AccessStats& stats() const override { return table_.stats(); }
  void ResetStats() override { table_.ResetStats(); }
  MetricsSnapshot SnapshotMetrics() const override {
    return table_.SnapshotMetrics();
  }
  void ResetMetrics() override { table_.ResetMetrics(); }
  uint64_t first_collision_items() const override {
    return table_.first_collision_items();
  }
  uint64_t first_failure_items() const override {
    return table_.first_failure_items();
  }
  uint64_t forced_rehash_events() const override {
    return table_.forced_rehash_events();
  }
  size_t onchip_memory_bytes() const override {
    return table_.onchip_memory_bytes();
  }
  Status ValidateInvariants() const override {
    return table_.ValidateInvariants();
  }
  const char* probe_variant() const override {
    if constexpr (requires { table_.probe_variant(); }) {
      return table_.probe_variant();
    } else {
      return "none";  // baselines carry no tag probes
    }
  }

 private:
  Table table_;
};

TableOptions ToTableOptions(const SchemeConfig& c, bool blocked,
                            bool multi_copy) {
  TableOptions o;
  o.num_hashes = c.num_hashes;
  o.slots_per_bucket = blocked ? c.slots_per_bucket : 1;
  // Round to the blocked granularity (a multiple of the single-slot one) so
  // every scheme gets exactly the same slot capacity: single-slot gets
  // slots / d buckets per sub-table, blocked gets slots / (d * l) buckets
  // of l slots.
  const uint64_t granularity =
      static_cast<uint64_t>(c.num_hashes) * c.slots_per_bucket;
  const uint64_t slots = RoundUp(c.total_slots, granularity);
  o.buckets_per_table = slots / c.num_hashes / o.slots_per_bucket;
  o.maxloop = c.maxloop;
  o.seed = c.seed;
  o.deletion_mode = c.deletion_mode;
  o.eviction_policy = c.eviction_policy;
  o.stash_enabled = c.stash_enabled;
  o.stash_kind = (!multi_copy && c.baseline_onchip_stash)
                     ? StashKind::kOnchipChs
                     : StashKind::kOffchip;
  o.stash_screen_enabled = c.stash_screen_enabled;
  o.lookup_pruning_enabled = c.lookup_pruning_enabled;
  o.probe = c.probe;
  o.latency_sample_period = c.latency_sample_period;
  return o;
}

}  // namespace

const char* SchemeName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kCuckoo:    return "Cuckoo";
    case SchemeKind::kMcCuckoo:  return "McCuckoo";
    case SchemeKind::kBcht:      return "BCHT";
    case SchemeKind::kBMcCuckoo: return "B-McCuckoo";
  }
  return "?";
}

std::unique_ptr<SchemeTable> MakeScheme(SchemeKind kind,
                                        const SchemeConfig& config) {
  const TableOptions opts =
      ToTableOptions(config, IsBlocked(kind), IsMultiCopy(kind));
  const Status s = opts.Validate();
  if (!s.ok()) {
    std::fprintf(stderr, "MakeScheme: %s\n", s.ToString().c_str());
    std::abort();
  }
  using K = uint64_t;
  using V = uint64_t;
  switch (kind) {
    case SchemeKind::kCuckoo:
      return std::make_unique<SchemeAdapter<CuckooTable<K, V>>>(opts);
    case SchemeKind::kMcCuckoo:
      return std::make_unique<SchemeAdapter<McCuckooTable<K, V>>>(opts);
    case SchemeKind::kBcht:
      return std::make_unique<SchemeAdapter<BchtTable<K, V>>>(opts);
    case SchemeKind::kBMcCuckoo:
      return std::make_unique<SchemeAdapter<BlockedMcCuckooTable<K, V>>>(opts);
  }
  std::abort();
}

}  // namespace mccuckoo
