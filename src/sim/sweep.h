// Experiment-sweep helpers shared by the bench binaries.
//
// Every figure in §IV is some combination of: fill a table to a target
// load while measuring per-insertion costs, then probe it with
// existing/missing keys or delete from it while measuring per-operation
// costs. These helpers implement those phases once, over the SchemeTable
// façade, so each bench binary is just parameters + printing.

#ifndef MCCUCKOO_SIM_SWEEP_H_
#define MCCUCKOO_SIM_SWEEP_H_

#include <cstdint>
#include <vector>

#include "src/mem/access_stats.h"
#include "src/sim/schemes.h"

namespace mccuckoo {

/// Access-stat delta over a counted batch of operations.
struct PhaseStats {
  AccessStats delta;
  uint64_t ops = 0;

  double ReadsPerOp() const {
    return ops ? static_cast<double>(delta.offchip_reads) / ops : 0.0;
  }
  double WritesPerOp() const {
    return ops ? static_cast<double>(delta.offchip_writes) / ops : 0.0;
  }
  double AccessesPerOp() const { return ReadsPerOp() + WritesPerOp(); }
  double KickoutsPerOp() const {
    return ops ? static_cast<double>(delta.kickouts) / ops : 0.0;
  }
  double StashProbesPerOp() const {
    return ops ? static_cast<double>(delta.stash_probes) / ops : 0.0;
  }

  PhaseStats& operator+=(const PhaseStats& other) {
    delta += other.delta;
    ops += other.ops;
    return *this;
  }
};

/// Inserts keys[*cursor..] until TotalItems reaches `target_load` *
/// capacity (or the keys run out). Advances *cursor and returns the phase's
/// stats. Insertion failures (stash spills) still count as one op.
PhaseStats FillToLoad(SchemeTable& table, const std::vector<uint64_t>& keys,
                      double target_load, size_t* cursor);

/// Looks up `count` keys drawn round-robin from `keys`; values are
/// verified to be key-derived when `expect_hit` is true. Returns the
/// phase's stats; `hits` (optional) receives the number found.
PhaseStats MeasureLookups(SchemeTable& table,
                          const std::vector<uint64_t>& keys, uint64_t count,
                          bool expect_hit, uint64_t* hits = nullptr);

/// Erases the given keys (each once). Returns the phase's stats.
PhaseStats MeasureErases(SchemeTable& table,
                         const std::vector<uint64_t>& keys);

/// Distribution of per-operation off-chip read counts. Bin i holds the
/// number of operations that needed exactly i reads; the last bin
/// aggregates everything >= kBins - 1.
struct AccessHistogram {
  static constexpr size_t kBins = 8;
  uint64_t bin[kBins] = {};
  uint64_t total = 0;

  void Record(uint64_t reads) {
    ++bin[reads < kBins - 1 ? reads : kBins - 1];
    ++total;
  }
  /// Fraction of operations that used exactly `i` reads (i < kBins - 1) or
  /// at least kBins - 1 reads (i == kBins - 1).
  double Fraction(size_t i) const {
    return total ? static_cast<double>(bin[i]) / static_cast<double>(total)
                 : 0.0;
  }
};

/// As MeasureLookups but additionally bins each lookup's off-chip read
/// count into `*hist` — used to verify the paper's claim that a large
/// portion of queries complete with zero or one access.
PhaseStats MeasureLookupHistogram(SchemeTable& table,
                                  const std::vector<uint64_t>& keys,
                                  uint64_t count, bool expect_hit,
                                  AccessHistogram* hist);

/// The conventional value stored for a key in all experiments (lets
/// lookups verify integrity cheaply).
inline uint64_t ValueFor(uint64_t key) { return key * 2654435761u + 1; }

}  // namespace mccuckoo

#endif  // MCCUCKOO_SIM_SWEEP_H_
