// Runtime façade over the four evaluated schemes.
//
// The paper compares "Cuckoo" (ternary), "McCuckoo", "BCHT" (3-hash 3-slot)
// and "B-McCuckoo". The bench binaries sweep all four through identical
// workloads; this type-erased interface lets them do it in one loop while
// the underlying tables stay zero-overhead templates. All schemes are
// normalized to the same total slot capacity so "load ratio" means the same
// thing everywhere.

#ifndef MCCUCKOO_SIM_SCHEMES_H_
#define MCCUCKOO_SIM_SCHEMES_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "src/common/status.h"
#include "src/core/config.h"
#include "src/mem/access_stats.h"
#include "src/obs/metrics.h"

namespace mccuckoo {

/// The four schemes of §IV.
enum class SchemeKind { kCuckoo, kMcCuckoo, kBcht, kBMcCuckoo };

/// All schemes in the paper's presentation order.
inline constexpr std::array<SchemeKind, 4> kAllSchemes = {
    SchemeKind::kCuckoo, SchemeKind::kMcCuckoo, SchemeKind::kBcht,
    SchemeKind::kBMcCuckoo};

/// Paper name of a scheme ("Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo").
const char* SchemeName(SchemeKind kind);

/// True for the multi-copy schemes.
inline bool IsMultiCopy(SchemeKind k) {
  return k == SchemeKind::kMcCuckoo || k == SchemeKind::kBMcCuckoo;
}

/// True for the blocked (3-slot) schemes.
inline bool IsBlocked(SchemeKind k) {
  return k == SchemeKind::kBcht || k == SchemeKind::kBMcCuckoo;
}

/// Shared experiment configuration. total_slots is rounded up so all
/// schemes get identical capacity (divisible by d * l).
struct SchemeConfig {
  uint64_t total_slots = 9 * 100'000;
  uint32_t num_hashes = 3;
  uint32_t slots_per_bucket = 3;  ///< For the blocked schemes.
  uint32_t maxloop = 500;
  uint64_t seed = 0x5EEDC0DE;
  DeletionMode deletion_mode = DeletionMode::kDisabled;
  EvictionPolicy eviction_policy = EvictionPolicy::kRandomWalk;
  bool stash_enabled = true;
  /// Baselines model the classic on-chip CHS stash [22] (free probes, tiny
  /// capacity); the multi-copy schemes keep the paper's off-chip stash.
  bool baseline_onchip_stash = true;
  bool stash_screen_enabled = true;
  bool lookup_pruning_enabled = true;
  /// Tag-probe kernel for the lookup paths (kAuto = best compiled in).
  /// Results and AccessStats are identical across kinds; only wall-clock
  /// time differs. Baselines have no tag probes and ignore it.
  ProbeKind probe = ProbeKind::kAuto;
  /// 1-in-N op-latency sampling period (TableOptions::latency_sample_period;
  /// 0 disables, 1 samples every op — bench latency keys use 1).
  uint32_t latency_sample_period = 32;
};

/// Type-erased uint64 -> uint64 hash table.
class SchemeTable {
 public:
  virtual ~SchemeTable() = default;

  virtual InsertResult Insert(uint64_t key, uint64_t value) = 0;
  virtual InsertResult InsertOrAssign(uint64_t key, uint64_t value) = 0;
  virtual bool Find(uint64_t key, uint64_t* out) const = 0;
  virtual bool Erase(uint64_t key) = 0;

  // Batched (prefetch-pipelined) counterparts. Results and AccessStats are
  // identical to the scalar loops; only wall-clock time differs.
  virtual size_t FindBatch(std::span<const uint64_t> keys, uint64_t* out,
                           bool* found) const = 0;
  virtual size_t ContainsBatch(std::span<const uint64_t> keys,
                               bool* found) const = 0;
  virtual void InsertBatch(std::span<const uint64_t> keys,
                           std::span<const uint64_t> values,
                           InsertResult* results) = 0;

  virtual size_t size() const = 0;
  virtual size_t stash_size() const = 0;
  virtual size_t TotalItems() const = 0;
  virtual uint64_t capacity() const = 0;
  virtual double load_factor() const = 0;

  virtual const AccessStats& stats() const = 0;
  virtual void ResetStats() = 0;

  /// Runtime metrics snapshot (kick-chain/probe histograms, partitions,
  /// stash hit rates, gauges); zeros under -DMCCUCKOO_NO_METRICS.
  virtual MetricsSnapshot SnapshotMetrics() const = 0;
  virtual void ResetMetrics() = 0;

  virtual uint64_t first_collision_items() const = 0;
  virtual uint64_t first_failure_items() const = 0;
  virtual uint64_t forced_rehash_events() const = 0;
  virtual size_t onchip_memory_bytes() const = 0;
  virtual Status ValidateInvariants() const = 0;

  /// Probe kernel the underlying table's lookups use ("simd" / "scalar");
  /// "none" for the baselines, which carry no tag probes. Bench keys embed
  /// it so recorded numbers say which kernel produced them.
  virtual const char* probe_variant() const = 0;
};

/// Builds a scheme instance; dies on invalid configuration (bench-level
/// code wants loud failure).
std::unique_ptr<SchemeTable> MakeScheme(SchemeKind kind,
                                        const SchemeConfig& config);

}  // namespace mccuckoo

#endif  // MCCUCKOO_SIM_SCHEMES_H_
