// Uniform experiment output: a run header echoing the configuration, the
// aligned results table on stdout, and an optional CSV mirror (--csv=PATH).

#ifndef MCCUCKOO_SIM_REPORTER_H_
#define MCCUCKOO_SIM_REPORTER_H_

#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/format.h"
#include "src/common/status.h"

namespace mccuckoo {

/// Prints "=== <experiment> ===" plus one "key = value" line per parameter
/// pair, so every run is self-describing and reproducible.
void PrintRunHeader(const std::string& experiment,
                    const std::vector<std::pair<std::string, std::string>>&
                        params);

/// Prints the aligned table to stdout; if --csv=PATH was given, also writes
/// the CSV form there (appending "_<suffix>" before the extension when a
/// suffix is provided — for multi-table experiments). Returns a Status for
/// the file I/O.
Status EmitTable(const TextTable& table, const Flags& flags,
                 const std::string& suffix = "");

}  // namespace mccuckoo

#endif  // MCCUCKOO_SIM_REPORTER_H_
