#include "src/sim/reporter.h"

#include <cstdio>

namespace mccuckoo {

void PrintRunHeader(
    const std::string& experiment,
    const std::vector<std::pair<std::string, std::string>>& params) {
  std::printf("=== %s ===\n", experiment.c_str());
  for (const auto& [k, v] : params) {
    std::printf("  %s = %s\n", k.c_str(), v.c_str());
  }
  std::printf("\n");
}

Status EmitTable(const TextTable& table, const Flags& flags,
                 const std::string& suffix) {
  std::fputs(table.ToAligned().c_str(), stdout);
  std::printf("\n");

  const std::string path = flags.GetString("csv", "");
  if (path.empty()) return Status::OK();

  std::string target = path;
  if (!suffix.empty()) {
    const size_t dot = target.rfind('.');
    if (dot == std::string::npos) {
      target += "_" + suffix;
    } else {
      target = target.substr(0, dot) + "_" + suffix + target.substr(dot);
    }
  }
  std::FILE* f = std::fopen(target.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + target);
  }
  const std::string csv = table.ToCsv();
  std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  std::printf("(csv written to %s)\n\n", target.c_str());
  return Status::OK();
}

}  // namespace mccuckoo
