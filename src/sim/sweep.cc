#include "src/sim/sweep.h"

#include <cstdio>
#include <cstdlib>

namespace mccuckoo {

PhaseStats FillToLoad(SchemeTable& table, const std::vector<uint64_t>& keys,
                      double target_load, size_t* cursor) {
  PhaseStats phase;
  const AccessStats before = table.stats();
  const uint64_t target_items =
      static_cast<uint64_t>(target_load * static_cast<double>(table.capacity()));
  while (table.TotalItems() < target_items && *cursor < keys.size()) {
    const uint64_t key = keys[(*cursor)++];
    table.Insert(key, ValueFor(key));
    ++phase.ops;
  }
  phase.delta = table.stats() - before;
  return phase;
}

PhaseStats MeasureLookups(SchemeTable& table,
                          const std::vector<uint64_t>& keys, uint64_t count,
                          bool expect_hit, uint64_t* hits) {
  PhaseStats phase;
  uint64_t found = 0;
  const AccessStats before = table.stats();
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t key = keys[i % keys.size()];
    uint64_t value = 0;
    const bool hit = table.Find(key, &value);
    if (hit) {
      ++found;
      if (expect_hit && value != ValueFor(key)) {
        std::fprintf(stderr, "MeasureLookups: corrupted value for key %llu\n",
                     static_cast<unsigned long long>(key));
        std::abort();
      }
    } else if (expect_hit) {
      std::fprintf(stderr, "MeasureLookups: lost key %llu\n",
                   static_cast<unsigned long long>(key));
      std::abort();
    }
    ++phase.ops;
  }
  phase.delta = table.stats() - before;
  if (hits != nullptr) *hits = found;
  return phase;
}

PhaseStats MeasureLookupHistogram(SchemeTable& table,
                                  const std::vector<uint64_t>& keys,
                                  uint64_t count, bool expect_hit,
                                  AccessHistogram* hist) {
  PhaseStats phase;
  const AccessStats before = table.stats();
  uint64_t last_reads = before.offchip_reads;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t key = keys[i % keys.size()];
    const bool hit = table.Find(key, nullptr);
    if (expect_hit && !hit) {
      std::fprintf(stderr, "MeasureLookupHistogram: lost key %llu\n",
                   static_cast<unsigned long long>(key));
      std::abort();
    }
    const uint64_t now = table.stats().offchip_reads;
    hist->Record(now - last_reads);
    last_reads = now;
    ++phase.ops;
  }
  phase.delta = table.stats() - before;
  return phase;
}

PhaseStats MeasureErases(SchemeTable& table,
                         const std::vector<uint64_t>& keys) {
  PhaseStats phase;
  const AccessStats before = table.stats();
  for (const uint64_t key : keys) {
    table.Erase(key);
    ++phase.ops;
  }
  phase.delta = table.stats() - before;
  return phase;
}

}  // namespace mccuckoo
